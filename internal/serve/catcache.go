package serve

// Catalog-level result cache. The cost store below amortizes *per-shape*
// backend evaluations, but a fully warm /v1/catalog request still re-runs
// the whole generate → prefilter → cost → frontier pipeline — thousands
// of candidate constructions and store lookups to reproduce a catalog
// that cannot have changed. This cache memoizes the finished artifact:
// the canonicalized request spec maps straight to the built rdd.Catalog,
// so a repeat request is one map lookup — zero backend evaluations, zero
// generated candidates. Entries are stamped with the backend's cost-model
// epoch (engine.BackendEpoch); a backend upgrade flips the epoch and the
// stale catalog is invalidated on its next lookup instead of being served
// silently wrong.
//
// The cache is sharded like the cost store: at high RPS every warm
// request takes the lookup lock, and a single mutex serializes all of
// them even though they touch different keys. Keys hash across
// power-of-two shards, each an independent (mutex, map, LRU list)
// triple with the single-flight build semantics intact — two requests
// for the same spec always land on the same shard and share one build.
// Eviction is LRU per shard over capacity/shards entries, which bounds
// total residency at capacity exactly; small caches collapse to one
// shard so capacity-2 eviction tests (and any operator running a tiny
// cache) still see strict global LRU order.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vitdyn/internal/rdd"
)

// DefaultCatalogCacheCapacity bounds a cache created with capacity <= 0.
// The request space is tiny — five families × a handful of datasets,
// variants, steps and backends — so 128 holds every spec this repository
// can serve with room for ad-hoc step values.
const DefaultCatalogCacheCapacity = 128

// catalogKey is the canonicalized identity of one catalog build: the
// request spec with defaults resolved (so "dataset omitted" and
// "dataset=ADE" share an entry) plus the resolved backend name. The
// worker budget is deliberately absent — the pipeline is deterministic,
// so worker count changes latency, never bytes.
type catalogKey struct {
	family  string
	dataset string
	variant string
	step    int
	backend string // resolved CostBackend.Name()
}

// catalogKeyFor canonicalizes a request the same way CatalogRequest.Seq
// resolves its defaults.
func catalogKeyFor(cr CatalogRequest, backendName string) catalogKey {
	dataset := cr.Dataset
	if dataset == "" {
		dataset = "ADE"
	}
	variant := cr.Variant
	if variant == "" {
		variant = "Tiny"
	}
	return catalogKey{
		family:  cr.Family,
		dataset: dataset,
		variant: variant,
		step:    cr.Step,
		backend: backendName,
	}
}

// catalogEntry is one resident catalog. Like storeEntry, the once makes
// concurrent cold requests for the same spec build once and share the
// result; done publishes completion without joining the once. epoch is
// fixed at insert — an entry never migrates epochs, it is replaced.
type catalogEntry struct {
	key   catalogKey
	epoch uint64
	once  sync.Once
	done  atomic.Bool
	cat   *rdd.Catalog
	err   error
}

// catShard is one independent slice of the cache: its own lock, its own
// map, its own LRU order.
type catShard struct {
	mu      sync.Mutex
	entries map[catalogKey]*list.Element
	order   *list.List // front = most recently used
	cap     int
}

// CatalogCache is a bounded LRU of built catalogs keyed by canonicalized
// request spec, epoch-invalidated and sharded for concurrent lookups.
// Safe for concurrent use.
type CatalogCache struct {
	shards []*catShard
	mask   uint64 // len(shards) - 1; len is a power of two

	hits          atomic.Int64
	misses        atomic.Int64
	errors        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// catalogCacheShards picks the shard count for a capacity: the largest
// power of two ≤ min(16, capacity/8), floored at 1. Keeping at least 8
// entries per shard means sharding never meaningfully distorts LRU
// behaviour, and tiny caches (capacity < 16) get exactly one shard —
// i.e. strict global LRU.
func catalogCacheShards(capacity int) int {
	n := 1
	for n*2 <= 16 && n*2 <= capacity/8 {
		n *= 2
	}
	return n
}

// NewCatalogCache returns a cache holding at most capacity catalogs;
// capacity <= 0 selects DefaultCatalogCacheCapacity. The shard count is
// derived from the capacity (see catalogCacheShards).
func NewCatalogCache(capacity int) *CatalogCache {
	if capacity <= 0 {
		capacity = DefaultCatalogCacheCapacity
	}
	return NewCatalogCacheWithShards(capacity, catalogCacheShards(capacity))
}

// NewCatalogCacheWithShards returns a cache with an explicit shard
// count, rounded down to a power of two and clamped to [1, capacity].
// Total residency across shards never exceeds capacity; per-shard
// capacity is capacity/shards (remainder spread over the first shards).
func NewCatalogCacheWithShards(capacity, shards int) *CatalogCache {
	if capacity <= 0 {
		capacity = DefaultCatalogCacheCapacity
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	// Round down to a power of two so shardFor can mask instead of mod.
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	c := &CatalogCache{shards: make([]*catShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		capi := capacity / n
		if i < capacity%n {
			capi++
		}
		c.shards[i] = &catShard{
			entries: make(map[catalogKey]*list.Element),
			order:   list.New(),
			cap:     capi,
		}
	}
	return c
}

// Shards reports the shard count (for /statsz and tests).
func (c *CatalogCache) Shards() int { return len(c.shards) }

// shardFor hashes the key across shards: FNV-1a over every key field,
// with a separator byte between strings so ("ab","c") and ("a","bc")
// differ.
func (c *CatalogCache) shardFor(key catalogKey) *catShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff
		h *= prime64
	}
	mix(key.family)
	mix(key.dataset)
	mix(key.variant)
	mix(key.backend)
	h ^= uint64(key.step)
	h *= prime64
	return c.shards[h&c.mask]
}

// removeLocked drops el from the shard. Caller holds s.mu.
func (s *catShard) removeLocked(el *list.Element) {
	s.order.Remove(el)
	delete(s.entries, el.Value.(*catalogEntry).key)
}

// lookup returns the cached catalog for (key, epoch) when it is resident,
// fully built and healthy — the fast path handlers take before paying
// for a sweep slot. A resident entry stamped with a different epoch is
// invalidated here (the backend has upgraded; its catalog is stale), and
// entries still building or failed report a miss without blocking.
// Only successful lookups count as hits.
func (c *CatalogCache) lookup(key catalogKey, epoch uint64) (*rdd.Catalog, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if !ok {
		s.mu.Unlock()
		return nil, false
	}
	ent := el.Value.(*catalogEntry)
	if ent.epoch != epoch {
		s.removeLocked(el)
		s.mu.Unlock()
		c.invalidations.Add(1)
		return nil, false
	}
	if !ent.done.Load() || ent.err != nil {
		s.mu.Unlock()
		return nil, false
	}
	s.order.MoveToFront(el)
	s.mu.Unlock()
	c.hits.Add(1)
	return ent.cat, true
}

// getOrBuild returns the catalog for (key, epoch), running build at most
// once per resident key — concurrent cold requests for one spec share a
// single sweep. Callers hold a sweep slot: build runs on the calling
// goroutine and must never acquire one itself (a slot-holder waiting on
// a slot-acquiring build is how slot pools deadlock). Build errors are
// returned but never cached — whichever caller observes the failure
// drops the entry, so the next request retries. An entry resident under
// a different epoch is replaced.
func (c *CatalogCache) getOrBuild(key catalogKey, epoch uint64, build func() (*rdd.Catalog, error)) (*rdd.Catalog, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if ok {
		ent := el.Value.(*catalogEntry)
		if ent.epoch == epoch {
			s.order.MoveToFront(el)
			s.mu.Unlock()
			return c.join(s, ent, build)
		}
		s.removeLocked(el)
		c.invalidations.Add(1)
	}
	ent := &catalogEntry{key: key, epoch: epoch}
	s.entries[key] = s.order.PushFront(ent)
	for s.order.Len() > s.cap {
		s.removeLocked(s.order.Back())
		c.evictions.Add(1)
	}
	s.mu.Unlock()
	return c.join(s, ent, build)
}

// join runs (or waits out) the entry's build and accounts the outcome:
// the caller whose build ran is a miss, callers that shared a finished
// or in-flight build are hits, and any error outcome counts as an error
// and drops the entry (identity-checked, so a racing re-insert under the
// same key survives).
func (c *CatalogCache) join(s *catShard, ent *catalogEntry, build func() (*rdd.Catalog, error)) (*rdd.Catalog, error) {
	ran := false
	ent.once.Do(func() {
		ran = true
		ent.cat, ent.err = build()
	})
	ent.done.Store(true)
	if ent.err != nil {
		s.mu.Lock()
		if el, ok := s.entries[ent.key]; ok && el.Value.(*catalogEntry) == ent {
			s.removeLocked(el)
		}
		s.mu.Unlock()
		c.errors.Add(1)
		return nil, ent.err
	}
	if ran {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return ent.cat, nil
}

// Len returns the number of resident entries across all shards.
func (c *CatalogCache) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the total capacity across all shards.
func (c *CatalogCache) Capacity() int {
	n := 0
	for _, s := range c.shards {
		n += s.cap
	}
	return n
}

// CatalogCacheStats is a point-in-time snapshot of the cache counters,
// the /statsz catalog_cache section. Hits count lookups served from a
// built catalog (including joins of an in-flight build); misses count
// builds actually run; errors count failed builds (never cached);
// invalidations count entries dropped because their backend moved to a
// new cost-model epoch.
type CatalogCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Errors        int64 `json:"errors"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
	Shards        int   `json:"shards"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (st CatalogCacheStats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters (each individually
// exact, the set approximate under concurrent load).
func (c *CatalogCache) Stats() CatalogCacheStats {
	return CatalogCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Errors:        c.errors.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      c.Capacity(),
		Shards:        len(c.shards),
	}
}
