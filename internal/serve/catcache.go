package serve

// Catalog-level result cache. The cost store below amortizes *per-shape*
// backend evaluations, but a fully warm /v1/catalog request still re-runs
// the whole generate → prefilter → cost → frontier pipeline — thousands
// of candidate constructions and store lookups to reproduce a catalog
// that cannot have changed. This cache memoizes the finished artifact:
// the canonicalized request spec maps straight to the built rdd.Catalog,
// so a repeat request is one map lookup — zero backend evaluations, zero
// generated candidates. Entries are stamped with the backend's cost-model
// epoch (engine.BackendEpoch); a backend upgrade flips the epoch and the
// stale catalog is invalidated on its next lookup instead of being served
// silently wrong.

import (
	"container/list"
	"sync"
	"sync/atomic"

	"vitdyn/internal/rdd"
)

// DefaultCatalogCacheCapacity bounds a cache created with capacity <= 0.
// The request space is tiny — five families × a handful of datasets,
// variants, steps and backends — so 128 holds every spec this repository
// can serve with room for ad-hoc step values.
const DefaultCatalogCacheCapacity = 128

// catalogKey is the canonicalized identity of one catalog build: the
// request spec with defaults resolved (so "dataset omitted" and
// "dataset=ADE" share an entry) plus the resolved backend name. The
// worker budget is deliberately absent — the pipeline is deterministic,
// so worker count changes latency, never bytes.
type catalogKey struct {
	family  string
	dataset string
	variant string
	step    int
	backend string // resolved CostBackend.Name()
}

// catalogKeyFor canonicalizes a request the same way CatalogRequest.Seq
// resolves its defaults.
func catalogKeyFor(cr CatalogRequest, backendName string) catalogKey {
	dataset := cr.Dataset
	if dataset == "" {
		dataset = "ADE"
	}
	variant := cr.Variant
	if variant == "" {
		variant = "Tiny"
	}
	return catalogKey{
		family:  cr.Family,
		dataset: dataset,
		variant: variant,
		step:    cr.Step,
		backend: backendName,
	}
}

// catalogEntry is one resident catalog. Like storeEntry, the once makes
// concurrent cold requests for the same spec build once and share the
// result; done publishes completion without joining the once. epoch is
// fixed at insert — an entry never migrates epochs, it is replaced.
type catalogEntry struct {
	key   catalogKey
	epoch uint64
	once  sync.Once
	done  atomic.Bool
	cat   *rdd.Catalog
	err   error
}

// CatalogCache is a bounded LRU of built catalogs keyed by canonicalized
// request spec, epoch-invalidated. A single mutex suffices — lookups are
// a map probe plus a list splice, and the build itself runs outside the
// lock — so unlike the cost store there is nothing to shard. Safe for
// concurrent use.
type CatalogCache struct {
	mu      sync.Mutex
	entries map[catalogKey]*list.Element
	order   *list.List // front = most recently used
	cap     int

	hits          atomic.Int64
	misses        atomic.Int64
	errors        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
}

// NewCatalogCache returns a cache holding at most capacity catalogs;
// capacity <= 0 selects DefaultCatalogCacheCapacity.
func NewCatalogCache(capacity int) *CatalogCache {
	if capacity <= 0 {
		capacity = DefaultCatalogCacheCapacity
	}
	return &CatalogCache{
		entries: make(map[catalogKey]*list.Element),
		order:   list.New(),
		cap:     capacity,
	}
}

// removeLocked drops el from the cache. Caller holds c.mu.
func (c *CatalogCache) removeLocked(el *list.Element) {
	c.order.Remove(el)
	delete(c.entries, el.Value.(*catalogEntry).key)
}

// lookup returns the cached catalog for (key, epoch) when it is resident,
// fully built and healthy — the fast path handlers take before paying
// for a sweep slot. A resident entry stamped with a different epoch is
// invalidated here (the backend has upgraded; its catalog is stale), and
// entries still building or failed report a miss without blocking.
// Only successful lookups count as hits.
func (c *CatalogCache) lookup(key catalogKey, epoch uint64) (*rdd.Catalog, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	ent := el.Value.(*catalogEntry)
	if ent.epoch != epoch {
		c.removeLocked(el)
		c.invalidations.Add(1)
		c.mu.Unlock()
		return nil, false
	}
	if !ent.done.Load() || ent.err != nil {
		c.mu.Unlock()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.mu.Unlock()
	c.hits.Add(1)
	return ent.cat, true
}

// getOrBuild returns the catalog for (key, epoch), running build at most
// once per resident key — concurrent cold requests for one spec share a
// single sweep. Callers hold a sweep slot: build runs on the calling
// goroutine and must never acquire one itself (a slot-holder waiting on
// a slot-acquiring build is how slot pools deadlock). Build errors are
// returned but never cached — whichever caller observes the failure
// drops the entry, so the next request retries. An entry resident under
// a different epoch is replaced.
func (c *CatalogCache) getOrBuild(key catalogKey, epoch uint64, build func() (*rdd.Catalog, error)) (*rdd.Catalog, error) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		ent := el.Value.(*catalogEntry)
		if ent.epoch == epoch {
			c.order.MoveToFront(el)
			c.mu.Unlock()
			return c.join(ent, build)
		}
		c.removeLocked(el)
		c.invalidations.Add(1)
	}
	ent := &catalogEntry{key: key, epoch: epoch}
	c.entries[key] = c.order.PushFront(ent)
	for c.order.Len() > c.cap {
		c.removeLocked(c.order.Back())
		c.evictions.Add(1)
	}
	c.mu.Unlock()
	return c.join(ent, build)
}

// join runs (or waits out) the entry's build and accounts the outcome:
// the caller whose build ran is a miss, callers that shared a finished
// or in-flight build are hits, and any error outcome counts as an error
// and drops the entry.
func (c *CatalogCache) join(ent *catalogEntry, build func() (*rdd.Catalog, error)) (*rdd.Catalog, error) {
	ran := false
	ent.once.Do(func() {
		ran = true
		ent.cat, ent.err = build()
	})
	ent.done.Store(true)
	if ent.err != nil {
		c.mu.Lock()
		if el, ok := c.entries[ent.key]; ok && el.Value.(*catalogEntry) == ent {
			c.removeLocked(el)
		}
		c.mu.Unlock()
		c.errors.Add(1)
		return nil, ent.err
	}
	if ran {
		c.misses.Add(1)
	} else {
		c.hits.Add(1)
	}
	return ent.cat, nil
}

// Len returns the number of resident entries.
func (c *CatalogCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// CatalogCacheStats is a point-in-time snapshot of the cache counters,
// the /statsz catalog_cache section. Hits count lookups served from a
// built catalog (including joins of an in-flight build); misses count
// builds actually run; errors count failed builds (never cached);
// invalidations count entries dropped because their backend moved to a
// new cost-model epoch.
type CatalogCacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Errors        int64 `json:"errors"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	Entries       int   `json:"entries"`
	Capacity      int   `json:"capacity"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (st CatalogCacheStats) HitRate() float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Stats returns a snapshot of the cache counters (each individually
// exact, the set approximate under concurrent load).
func (c *CatalogCache) Stats() CatalogCacheStats {
	return CatalogCacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Errors:        c.errors.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      c.cap,
	}
}
