package serve

// Tests for the observability layer: /metrics exposition validity,
// /versionz, request IDs, ?debug=trace stage spans, structured access
// logs through the real handler stack, NaN-free /statsz on a fresh
// server, and the zero-allocation pin on the catalog cache-hit path.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"vitdyn/internal/engine"
	"vitdyn/internal/obs"
)

const obsCatalogURL = "/v1/catalog?family=segformer&dataset=ADE&step=512&backend=flops&workers=2"

// TestMetricsExposition drives real traffic through the handler and
// asserts GET /metrics is valid Prometheus text exposition carrying the
// per-route latency histogram and status-class counters, with the
// histogram invariants (cumulative monotone buckets, +Inf == _count)
// intact.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	if status, body := get(t, ts.URL+obsCatalogURL); status != http.StatusOK {
		t.Fatalf("catalog status %d: %s", status, body)
	}
	get(t, ts.URL+"/healthz")
	get(t, ts.URL+"/definitely-not-a-route") // lands in route="other"

	status, body := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	samples, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics unparseable: %v\n%s", err, body)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Key()] = s.Value
	}

	if v := byKey[`vitdyn_http_requests_total{route="/v1/catalog",status="2xx"}`]; v != 1 {
		t.Errorf("catalog 2xx counter = %v, want 1", v)
	}
	if v := byKey[`vitdyn_http_requests_total{route="other",status="4xx"}`]; v != 1 {
		t.Errorf("other-route 4xx counter = %v, want 1", v)
	}

	// Histogram invariants per route: _count == +Inf bucket, buckets
	// cumulative-monotone, _count for the catalog route is 1.
	var cum []float64
	for _, s := range samples {
		if s.Name == "vitdyn_http_request_duration_seconds_bucket" && s.Labels["route"] == "/v1/catalog" {
			cum = append(cum, s.Value)
		}
	}
	if len(cum) != len(obs.DefaultLatencyBuckets)+1 {
		t.Fatalf("catalog route has %d bucket lines, want %d", len(cum), len(obs.DefaultLatencyBuckets)+1)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("bucket series not monotone at %d: %v", i, cum)
		}
	}
	count := byKey[`vitdyn_http_request_duration_seconds_count{route="/v1/catalog"}`]
	if count != 1 || cum[len(cum)-1] != count {
		t.Errorf("+Inf bucket %v vs count %v, want both 1", cum[len(cum)-1], count)
	}
	if sum := byKey[`vitdyn_http_request_duration_seconds_sum{route="/v1/catalog"}`]; sum <= 0 {
		t.Errorf("latency sum = %v, want > 0", sum)
	}

	// The /statsz-backed series read the same sources: one sweep ran.
	if v := byKey["vitdyn_sweeps_completed_total"]; v != 1 {
		t.Errorf("sweeps counter = %v, want 1", v)
	}
	if v := byKey["vitdyn_stream_costed_total"]; v <= 0 {
		t.Errorf("stream costed counter = %v, want > 0", v)
	}
	if _, ok := byKey["vitdyn_go_goroutines"]; !ok {
		t.Error("missing vitdyn_go_goroutines")
	}
}

// TestMetricsZeroTrafficNoNaN: scraping a fresh server (zero lookups,
// zero requests recorded yet beyond the scrape itself) yields only
// finite values — ratio gauges emit 0, not NaN.
func TestMetricsZeroTrafficNoNaN(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, body := get(t, ts.URL+"/metrics")
	samples, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("fresh /metrics unparseable: %v", err)
	}
	found := map[string]bool{}
	for _, s := range samples {
		if math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			t.Errorf("%s = %v: non-finite on a fresh server", s.Key(), s.Value)
		}
		found[s.Name] = true
	}
	for _, ratio := range []string{"vitdyn_store_hit_ratio", "vitdyn_catalog_cache_hit_ratio", "vitdyn_stream_prefilter_ratio"} {
		if !found[ratio] {
			t.Errorf("ratio gauge %s missing from exposition", ratio)
		}
	}
}

// TestStatszZeroCountsFinite pins the /statsz half of the NaN guard: a
// fresh server's stats must encode (encoding/json rejects NaN/Inf) and
// every rate field must be exactly 0.
func TestStatszZeroCountsFinite(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := get(t, ts.URL+"/statsz")
	if status != http.StatusOK {
		t.Fatalf("/statsz status %d: %s", status, body)
	}
	var st statszResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/statsz not JSON: %v", err)
	}
	if r := st.Store.HitRate(); r != 0 {
		t.Errorf("store hit rate = %v, want 0 with zero lookups", r)
	}
	if st.CatalogCache.HitRate != 0 {
		t.Errorf("catalog cache hit_rate = %v, want 0", st.CatalogCache.HitRate)
	}
	if st.Stream.PrefilterRate != 0 {
		t.Errorf("stream prefilter_rate = %v, want 0", st.Stream.PrefilterRate)
	}
	if st.Server.StoreHitRate != 0 {
		t.Errorf("server store_hit_rate = %v, want 0", st.Server.StoreHitRate)
	}
}

// TestVersionz: module/Go-version build info is served as JSON.
func TestVersionz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := get(t, ts.URL+"/versionz")
	if status != http.StatusOK {
		t.Fatalf("/versionz status %d", status)
	}
	var v obs.BuildInfo
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("/versionz not JSON: %v", err)
	}
	if v.Module != "vitdyn" || v.GoVersion == "" {
		t.Errorf("build info %+v missing module or go version", v)
	}
}

// TestRequestIDHeader: every response carries X-Request-ID; an inbound
// ID is honored.
func TestRequestIDHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID on response")
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied-42")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied-42" {
		t.Errorf("inbound request ID not honored: got %q", got)
	}
}

// TestDebugTraceCatalog is the acceptance check for stage tracing: a
// ?debug=trace catalog request returns a trace block whose span
// durations sum to no more than the measured request latency; a cold
// request shows the pipeline stages, a warm one shows the cache hit.
func TestDebugTraceCatalog(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	url := ts.URL + obsCatalogURL + "&debug=trace"

	fetch := func() (CatalogResponse, time.Duration) {
		t.Helper()
		t0 := time.Now()
		status, body := get(t, url)
		elapsed := time.Since(t0)
		if status != http.StatusOK {
			t.Fatalf("status %d: %s", status, body)
		}
		var resp CatalogResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		return resp, elapsed
	}

	spanNames := func(resp CatalogResponse) map[string]bool {
		names := map[string]bool{}
		for _, sp := range resp.Trace.Spans {
			names[sp.Name] = true
		}
		return names
	}
	checkSum := func(resp CatalogResponse, elapsed time.Duration) {
		t.Helper()
		var sum int64
		for _, sp := range resp.Trace.Spans {
			if sp.DurationNS < 0 {
				t.Errorf("span %s has negative duration", sp.Name)
			}
			sum += sp.DurationNS
		}
		if sum > elapsed.Nanoseconds() {
			t.Errorf("span durations sum to %v > measured latency %v", time.Duration(sum), elapsed)
		}
		if sum > resp.Trace.DurationNS {
			t.Errorf("span durations sum to %v > trace duration %v", sum, resp.Trace.DurationNS)
		}
	}

	cold, coldLat := fetch()
	if cold.Trace == nil {
		t.Fatal("no trace block on ?debug=trace response")
	}
	if cold.Trace.RequestID == "" {
		t.Error("trace block missing request ID")
	}
	names := spanNames(cold)
	if !names["catalog_cache_miss"] {
		t.Errorf("cold trace missing catalog_cache_miss: %+v", cold.Trace.Spans)
	}
	for _, stage := range []string{"prefilter", "cost", "frontier"} {
		if !names[stage] {
			t.Errorf("cold trace missing %s stage span: %+v", stage, cold.Trace.Spans)
		}
	}
	checkSum(cold, coldLat)

	warm, warmLat := fetch()
	if warm.Trace == nil {
		t.Fatal("no trace block on warm response")
	}
	wnames := spanNames(warm)
	if !wnames["catalog_cache_hit"] {
		t.Errorf("warm trace missing catalog_cache_hit: %+v", warm.Trace.Spans)
	}
	if wnames["cost"] {
		t.Errorf("warm trace re-ran the pipeline: %+v", warm.Trace.Spans)
	}
	checkSum(warm, warmLat)

	// The trace block is strictly opt-in: without debug=trace the body
	// carries no trace field.
	status, body := get(t, ts.URL+obsCatalogURL)
	if status != http.StatusOK {
		t.Fatalf("untraced status %d", status)
	}
	if bytes.Contains(body, []byte(`"trace"`)) {
		t.Error("untraced response contains a trace block")
	}
}

// TestAccessLogThroughHandler: the middleware emits one JSON access-log
// line per request with the request's route, status and ID.
func TestAccessLogThroughHandler(t *testing.T) {
	var buf bytes.Buffer
	logger := obs.NewAccessLogger(&buf, obs.JSONFormat)
	_, ts := newTestServer(t, Options{AccessLog: logger})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	wantID := resp.Header.Get("X-Request-ID")

	line := strings.TrimSpace(buf.String())
	var entry map[string]any
	if err := json.Unmarshal([]byte(line), &entry); err != nil {
		t.Fatalf("access log not JSON: %v\n%q", err, line)
	}
	if entry["route"] != "/healthz" || entry["method"] != "GET" {
		t.Errorf("entry route/method wrong: %v", entry)
	}
	if entry["status"] != float64(200) {
		t.Errorf("entry status = %v, want 200", entry["status"])
	}
	if entry["request_id"] != wantID {
		t.Errorf("entry request_id = %v, want %v (header)", entry["request_id"], wantID)
	}
	if entry["bytes"].(float64) <= 0 {
		t.Errorf("entry bytes = %v, want > 0", entry["bytes"])
	}
}

// obsBenchSetup warms one catalog spec through catalogFor and returns
// everything needed to drive the cache-hit path directly.
func obsBenchSetup(tb testing.TB) (*Server, context.Context, CatalogRequest, engine.CostBackend, string, engine.CandidateSeq) {
	tb.Helper()
	srv := NewServer(Options{})
	req := CatalogRequest{Family: "segformer", Dataset: "ADE", Step: 512, Backend: "flops"}
	backend, err := ResolveBackend(req.Backend)
	if err != nil {
		tb.Fatal(err)
	}
	model, seq, err := req.Seq()
	if err != nil {
		tb.Fatal(err)
	}
	ctx := context.Background()
	if _, err := srv.catalogFor(ctx, req, backend, model, seq, 2, false); err != nil {
		tb.Fatal(err)
	}
	return srv, ctx, req, backend, model, seq
}

// TestCatalogCacheHitZeroAllocs pins the acceptance criterion: with
// tracing off, a catalog-cache hit allocates nothing — the span hooks,
// epoch fingerprint and cache lookup are all allocation-free.
func TestCatalogCacheHitZeroAllocs(t *testing.T) {
	srv, ctx, req, backend, model, seq := obsBenchSetup(t)
	if got := testing.AllocsPerRun(1000, func() {
		if _, err := srv.catalogFor(ctx, req, backend, model, seq, 2, false); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Errorf("cache-hit catalogFor allocates %v per op, want 0", got)
	}
}

// BenchmarkCatalogCacheHit measures the warm catalog path (the one every
// repeat /v1/catalog request takes before HTTP encoding); -benchmem
// reports its allocations, pinned at zero by TestCatalogCacheHitZeroAllocs.
func BenchmarkCatalogCacheHit(b *testing.B) {
	srv, ctx, req, backend, model, seq := obsBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.catalogFor(ctx, req, backend, model, seq, 2, false); err != nil {
			b.Fatal(err)
		}
	}
}
