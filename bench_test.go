package vitdyn

// The benchmark harness regenerates every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment and, on the
// first iteration, prints the regenerated rows so that
//
//	go test -bench=. -benchmem
//
// emits the full reproduction alongside harness timings. EXPERIMENTS.md
// records the paper-vs-measured comparison for each one.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"vitdyn/internal/experiments"
	"vitdyn/internal/gpu"
	"vitdyn/internal/magnet"
	"vitdyn/internal/nn"
	"vitdyn/internal/rdd"
)

// printOnce guards table output so repeated benchmark iterations do not
// spam the log.
var printOnce sync.Map

func emit(b *testing.B, key string, render func() fmt.Stringer) {
	if _, done := printOnce.LoadOrStore(key, true); done {
		return
	}
	b.StopTimer()
	fmt.Fprintln(os.Stderr)
	fmt.Fprint(os.Stderr, render().String())
	b.StartTimer()
}

func BenchmarkTable1ModelOverview(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1ModelOverview()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "table1", func() fmt.Stringer { return experiments.RenderTable1(rows) })
	}
}

func BenchmarkFig1DETRConvShare(b *testing.B) {
	sizes := []int{128, 256, 512, 800, 1024, 2048}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig1DETRConvShare(sizes, 0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig1", func() fmt.Stringer { return experiments.RenderFig1(rows) })
	}
}

func BenchmarkFig3FLOPsDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3FLOPsDistribution(8)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig3", func() fmt.Stringer { return experiments.RenderFig3(res) })
	}
}

func BenchmarkFig4ConvGPUTimeShare(b *testing.B) {
	sizes := []int{128, 256, 512, 1024}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig4ConvGPUTime(sizes, 0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig4", func() fmt.Stringer { return experiments.RenderFig4(rows) })
	}
}

func BenchmarkTable2AcceleratorAreas(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2AcceleratorAreas()
		emit(b, "table2", func() fmt.Stringer { return experiments.RenderTable2(rows) })
	}
}

func BenchmarkFig6EnergyVsThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6EnergyVsThroughput(0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig6", func() fmt.Stringer { return experiments.RenderFig6(rows) })
	}
}

func BenchmarkFig7SegFormerOnE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AcceleratorDistribution("segformer-ade-b2", 8)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig7", func() fmt.Stringer { return experiments.RenderDistribution(res, "Fig 7") })
	}
}

func BenchmarkFig8EnergyPerFLOP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig8EnergyPerFLOP(12)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig8", func() fmt.Stringer { return experiments.RenderFig8(rows) })
	}
}

func BenchmarkFig9SwinOnE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.AcceleratorDistribution("swin-tiny", 8)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig9", func() fmt.Stringer { return experiments.RenderDistribution(res, "Fig 9") })
	}
}

func BenchmarkFig10SegFormerGPUTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"ADE", "City"} {
			rows, err := experiments.Fig10SegFormerGPUTradeoff(ds, 0)
			if err != nil {
				b.Fatal(err)
			}
			key, title := "fig10-"+ds, "Fig 10 ("+ds+"): GPU time vs mIoU"
			emit(b, key, func() fmt.Stringer { return paretoOnly(title, rows) })
		}
	}
}

// paretoOnly renders just the frontier rows of a large tradeoff sweep.
func paretoOnly(title string, rows []experiments.TradeoffRow) fmt.Stringer {
	var keep []experiments.TradeoffRow
	for _, r := range rows {
		if r.Pareto || r.Source == "retrained" {
			keep = append(keep, r)
		}
	}
	return experiments.RenderTradeoff(title, keep)
}

func BenchmarkTable3SegFormerConfigs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3SegFormerConfigs()
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "table3", func() fmt.Stringer { return experiments.RenderTable3(rows) })
	}
}

func BenchmarkFig11SegFormerAccelTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig11SegFormerAccelTradeoff(0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig11", func() fmt.Stringer {
			return experiments.RenderTradeoff("Fig 11: accelerator E time/energy vs mIoU", rows)
		})
	}
}

func BenchmarkFig12SwinTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12SwinTradeoff(0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig12", func() fmt.Stringer { return experiments.RenderFig12(rows) })
	}
}

func BenchmarkFig13OFASwitching(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig13OFASwitching(0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "fig13", func() fmt.Stringer { return experiments.RenderFig13(rows) })
	}
}

func BenchmarkHeadlineClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		claims, err := experiments.HeadlineClaims(0)
		if err != nil {
			b.Fatal(err)
		}
		emit(b, "claims", func() fmt.Stringer { return experiments.RenderClaims(claims) })
	}
}

// --- Ablation benchmarks (DESIGN.md Section 5) ---

// BenchmarkAblationFLOPsOnlyPredictor quantifies Section III-C: how far a
// FLOPs-proportional runtime predictor diverges from the calibrated model.
func BenchmarkAblationFLOPsOnlyPredictor(b *testing.B) {
	g := nn.MustSegFormer("B2", 150, 512, 512)
	naive := gpu.FLOPsOnlyDevice()
	real := gpu.A5000()
	for i := 0; i < b.N; i++ {
		n := naive.Run(g).ConvTimeShare()
		r := real.Run(g).ConvTimeShare()
		if i == 0 {
			b.ReportMetric(n, "convshare-flopsonly")
			b.ReportMetric(r, "convshare-calibrated")
		}
	}
}

// BenchmarkAblationBufferSizing sweeps weight/input buffer sizes around
// accelerator E (the Section IV-B sweet-spot analysis).
func BenchmarkAblationBufferSizing(b *testing.B) {
	g := nn.MustSegFormer("B2", 150, 512, 512)
	for i := 0; i < b.N; i++ {
		base := magnet.AcceleratorE()
		for _, wb := range []int{32, 64, 128, 256, 1024} {
			c := base
			c.Name = fmt.Sprintf("E-wb%d", wb)
			c.SynthesizedAreaMM2 = 0
			c.WeightBufKB = wb
			r, err := c.Simulate(g)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(r.EnergyPerMAC(), fmt.Sprintf("pJ/MAC-wb%d", wb))
			}
		}
	}
}

// BenchmarkAblationVectorWidth compares K0=C0=32 against K0=C0=16 at equal
// total MACs (Section IV-B: ~1.4x energy, ~2.8x area per FLOP).
func BenchmarkAblationVectorWidth(b *testing.B) {
	g := nn.MustSegFormer("B2", 150, 512, 512)
	e := magnet.AcceleratorE()
	h, _ := magnet.ByName("H")
	for i := 0; i < b.N; i++ {
		re, err := e.Simulate(g)
		if err != nil {
			b.Fatal(err)
		}
		rh, err := h.Simulate(g)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(rh.EnergyPerMAC()/re.EnergyPerMAC(), "energy-ratio-16v32")
			b.ReportMetric(rh.TotalSeconds/re.TotalSeconds, "time-ratio-16v32")
		}
	}
}

// BenchmarkAblationDecoderVsEncoderPruning contrasts the paper's principle
// 2 (Section V-D): at matched FLOP savings, decoder-channel pruning costs
// far less accuracy than encoder-block bypass.
func BenchmarkAblationDecoderVsEncoderPruning(b *testing.B) {
	cfg, _ := nn.SegFormerB("B2", 150)
	res := SegFormerADEResilience()
	for i := 0; i < b.N; i++ {
		dec := SegFormerPath{Label: "dec", EncoderBlocks: [4]int{3, 4, 6, 3},
			FuseInCh: 1920, PredInCh: 768, DecodeLinear0Ch: 64}
		enc := SegFormerPath{Label: "enc", EncoderBlocks: [4]int{2, 3, 5, 3},
			FuseInCh: 3072, PredInCh: 768, DecodeLinear0Ch: 64}
		gd, err := ApplySegFormerPath(cfg, 512, 512, dec)
		if err != nil {
			b.Fatal(err)
		}
		ge, err := ApplySegFormerPath(cfg, 512, 512, enc)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(gd.TotalMACs())/1e9, "GMACs-decoder-pruned")
			b.ReportMetric(float64(ge.TotalMACs())/1e9, "GMACs-encoder-pruned")
			b.ReportMetric(res.Baseline-res.Pretrained(dec), "loss-decoder")
			b.ReportMetric(res.Baseline-res.Pretrained(enc), "loss-encoder")
		}
	}
}

// BenchmarkAblationRDDVsStatic quantifies Section V-E: dynamic path
// selection against static model choices over a bursty load.
func BenchmarkAblationRDDVsStatic(b *testing.B) {
	cat, err := SegFormerRDDCatalog("ADE", TargetAcceleratorE(), 512)
	if err != nil {
		b.Fatal(err)
	}
	tr := rdd.BurstyTrace(2000, cat.Cheapest().Cost*1.05, cat.Full().Cost*1.05, 0.4, 7)
	for i := 0; i < b.N; i++ {
		dyn := cat.Simulate(tr)
		stFull := rdd.SimulateStatic(cat.Full(), tr)
		stWorst := rdd.SimulateStatic(cat.Cheapest(), tr)
		if i == 0 {
			b.ReportMetric(dyn.EffectiveAccuracy(), "acc-dynamic")
			b.ReportMetric(stFull.EffectiveAccuracy(), "acc-static-full")
			b.ReportMetric(stWorst.EffectiveAccuracy(), "acc-static-worst")
		}
	}
}

// BenchmarkAblationEarlyExitVsRDD contrasts RDD with the input-dependent
// early-exit baseline of the paper's related work (Sections I, VI): same
// cost/accuracy frontier, different policy. Early exit wins on average cost
// without budgets; RDD wins on effective accuracy under budgets.
func BenchmarkAblationEarlyExitVsRDD(b *testing.B) {
	cat, err := SegFormerRDDCatalog("ADE", TargetAcceleratorE(), 512)
	if err != nil {
		b.Fatal(err)
	}
	ee, err := rdd.EarlyExitFromCatalog(cat, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	tr := rdd.StepTrace(2000, cat.Cheapest().Cost*1.05, cat.Full().Cost*1.05, 50)
	for i := 0; i < b.N; i++ {
		dyn := cat.Simulate(tr)
		exit := ee.Simulate(tr, 42)
		if i == 0 {
			b.ReportMetric(dyn.EffectiveAccuracy(), "acc-rdd")
			b.ReportMetric(exit.EffectiveAccuracy(), "acc-earlyexit")
			b.ReportMetric(float64(exit.Skipped), "misses-earlyexit")
			b.ReportMetric(ee.MeanCost()/ee.WorstCaseCost(), "earlyexit-avgcost-frac")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulator performance: layers
// simulated per second on accelerator E for the largest model.
func BenchmarkSimulatorThroughput(b *testing.B) {
	g := nn.MustSwin("Base", 150, 512, 512)
	e := magnet.AcceleratorE()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Simulate(g); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(g.Layers)), "layers/op")
}

// BenchmarkGraphConstruction measures model-builder performance.
func BenchmarkGraphConstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := NewSegFormer("B2", 150, 512, 512); err != nil {
			b.Fatal(err)
		}
	}
}
