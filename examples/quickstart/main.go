// Quickstart: build a model, profile its FLOPs, model its GPU latency,
// simulate it on the paper's accelerator E, and pick a dynamic execution
// path under a resource budget — the whole public API in one page.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"vitdyn"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, writing its narrative to w (separated from
// main so the example is testable in-process).
func run(w io.Writer) error {
	// 1. Build SegFormer ADE B2 at 512x512 (Table I's first row).
	g, err := vitdyn.NewSegFormer("B2", 150, 512, 512)
	if err != nil {
		return err
	}

	// 2. Analytical FLOPs profile (Section III-A).
	p := vitdyn.ProfileFLOPs(g, 1)
	fmt.Fprintf(w, "%s: %.1f GFLOPs, %.1fM params, %.0f%% of FLOPs in convolutions\n",
		g.Name, p.GFLOPs(), float64(p.TotalParams)/1e6, 100*p.ConvShare())
	for _, l := range p.Top(3) {
		fmt.Fprintf(w, "  %-18s %-8s %5.1f%% of FLOPs\n", l.Name, l.Kind, 100*l.Frac)
	}

	// 3. GPU latency model (Section III-C): FLOPs do not predict time.
	r := vitdyn.A5000().Run(g)
	fmt.Fprintf(w, "modeled A5000 latency: %.2f ms, convolutions only %.0f%% of time\n",
		r.Total*1e3, 100*r.ConvTimeShare())

	// 4. Accelerator E simulation (Section IV-C).
	ar, err := vitdyn.AcceleratorE().Simulate(g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "accelerator E: %.2f ms, %.2f mJ, convolutions %.0f%% of energy\n",
		ar.TotalSeconds*1e3, ar.EnergyJ()*1e3, 100*ar.ConvEnergyShare())

	// 5. RDD inference (Section V): catalog of alternative paths built by
	// the concurrent sweep engine, then pick the best path for a 75%
	// resource budget.
	cat, err := vitdyn.SegFormerRDDCatalog("ADE", vitdyn.TargetAcceleratorE(), 512)
	if err != nil {
		return err
	}
	budget := cat.Full().Cost * 0.75
	path, ok := cat.Select(budget)
	if !ok {
		return fmt.Errorf("no feasible path under budget %.2f", budget)
	}
	fmt.Fprintf(w, "budget %.2f ms -> run %q: %.2f ms at mIoU %.4f (full model: %.4f)\n",
		budget, path.Label, path.Cost, path.Accuracy, cat.Full().Accuracy)
	return nil
}
