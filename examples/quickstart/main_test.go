package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestQuickstartRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"GFLOPs",
		"modeled A5000 latency",
		"accelerator E:",
		"budget",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
