// Accelerator design-space exploration: reproduce the Section IV study —
// sweep the thirteen Table II MAGNet parameterizations over SegFormer,
// extract the Pareto frontier, and show why few-input-channel layers are
// expensive — then go beyond the paper with a custom buffer sweep.
package main

import (
	"fmt"
	"log"

	"vitdyn"
)

func main() {
	g, err := vitdyn.NewSegFormer("B2", 150, 512, 512)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Table II sweep with Pareto extraction (Fig. 6).
	fmt.Println("Table II sweep on SegFormer ADE B2:")
	var pts []vitdyn.ParetoPoint
	results := map[string]*vitdyn.AcceleratorResult{}
	for _, c := range vitdyn.TableIIAccelerators() {
		r, err := c.Simulate(g)
		if err != nil {
			log.Fatal(err)
		}
		results[c.Name] = r
		pts = append(pts, vitdyn.ParetoPoint{
			Cost: r.EnergyPerMAC(), Value: r.ThroughputPerArea(c), Tag: c.Name,
		})
		fmt.Printf("  %s: %.4f pJ/MAC, %7.0f GMAC/s/mm2, %.2f ms\n",
			c.Name, r.EnergyPerMAC(), r.ThroughputPerArea(c), r.TotalSeconds*1e3)
	}
	fmt.Print("Pareto-optimal: ")
	for _, p := range vitdyn.ParetoFrontier(pts) {
		fmt.Printf("%s ", p.Tag)
	}
	fmt.Println("(paper: the D/E/G cluster)")

	// 2. Why are some layers expensive? (Fig. 8)
	e := results["E"]
	fmt.Println("\nMost expensive layers by energy/MAC on accelerator E:")
	worstShown := 0
	for _, name := range []string{"enc.s0.b0.mlp.dwconv", "enc.patchembed0", "dec.conv2dfuse"} {
		for i := range e.Layers {
			if e.Layers[i].Name == name && e.Layers[i].MACs > 0 {
				fmt.Printf("  %-22s %.4f pJ/MAC (utilization %.2f)\n",
					name, e.Layers[i].EnergyPerMAC(), e.Layers[i].Utilization)
				worstShown++
			}
		}
	}
	if worstShown == 0 {
		log.Fatal("expected layers missing")
	}

	// 3. Beyond the paper: a custom weight-buffer sweep around E.
	fmt.Println("\nCustom weight-buffer sweep (beyond Table II):")
	base := vitdyn.AcceleratorE()
	for _, wb := range []int{32, 64, 128, 256, 512, 1024} {
		c := base
		c.Name = fmt.Sprintf("E/wb=%dKB", wb)
		c.SynthesizedAreaMM2 = 0 // analytic area for custom points
		c.WeightBufKB = wb
		r, err := c.Simulate(g)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %.4f pJ/MAC, area %.2f mm2\n", c.Name, r.EnergyPerMAC(), c.AreaMM2())
	}
	fmt.Println("The paper's 64-128 B/MAC weight-buffer sweet spot emerges: smaller")
	fmt.Println("buffers stream weights repeatedly, larger ones pay per-read energy.")
}
