// Accelerator design-space exploration: reproduce the Section IV study —
// sweep the thirteen Table II MAGNet parameterizations over SegFormer,
// extract the Pareto frontier, and show why few-input-channel layers are
// expensive — then go beyond the paper with a custom buffer sweep.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"vitdyn"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, writing its narrative to w (separated from
// main so the example is testable in-process).
func run(w io.Writer) error {
	g, err := vitdyn.NewSegFormer("B2", 150, 512, 512)
	if err != nil {
		return err
	}

	// 1. Table II sweep with Pareto extraction (Fig. 6).
	fmt.Fprintln(w, "Table II sweep on SegFormer ADE B2:")
	var pts []vitdyn.ParetoPoint
	results := map[string]*vitdyn.AcceleratorResult{}
	for _, c := range vitdyn.TableIIAccelerators() {
		r, err := c.Simulate(g)
		if err != nil {
			return err
		}
		results[c.Name] = r
		pts = append(pts, vitdyn.ParetoPoint{
			Cost: r.EnergyPerMAC(), Value: r.ThroughputPerArea(c), Tag: c.Name,
		})
		fmt.Fprintf(w, "  %s: %.4f pJ/MAC, %7.0f GMAC/s/mm2, %.2f ms\n",
			c.Name, r.EnergyPerMAC(), r.ThroughputPerArea(c), r.TotalSeconds*1e3)
	}
	fmt.Fprint(w, "Pareto-optimal: ")
	for _, p := range vitdyn.ParetoFrontier(pts) {
		fmt.Fprintf(w, "%s ", p.Tag)
	}
	fmt.Fprintln(w, "(paper: the D/E/G cluster)")

	// 2. Why are some layers expensive? (Fig. 8)
	e := results["E"]
	fmt.Fprintln(w, "\nMost expensive layers by energy/MAC on accelerator E:")
	worstShown := 0
	for _, name := range []string{"enc.s0.b0.mlp.dwconv", "enc.patchembed0", "dec.conv2dfuse"} {
		for i := range e.Layers {
			if e.Layers[i].Name == name && e.Layers[i].MACs > 0 {
				fmt.Fprintf(w, "  %-22s %.4f pJ/MAC (utilization %.2f)\n",
					name, e.Layers[i].EnergyPerMAC(), e.Layers[i].Utilization)
				worstShown++
			}
		}
	}
	if worstShown == 0 {
		return fmt.Errorf("expected layers missing")
	}

	// 3. Beyond the paper: a custom weight-buffer sweep around E.
	fmt.Fprintln(w, "\nCustom weight-buffer sweep (beyond Table II):")
	base := vitdyn.AcceleratorE()
	for _, wb := range []int{32, 64, 128, 256, 512, 1024} {
		c := base
		c.Name = fmt.Sprintf("E/wb=%dKB", wb)
		c.SynthesizedAreaMM2 = 0 // analytic area for custom points
		c.WeightBufKB = wb
		r, err := c.Simulate(g)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-12s %.4f pJ/MAC, area %.2f mm2\n", c.Name, r.EnergyPerMAC(), c.AreaMM2())
	}
	fmt.Fprintln(w, "The paper's 64-128 B/MAC weight-buffer sweet spot emerges: smaller")
	fmt.Fprintln(w, "buffers stream weights repeatedly, larger ones pay per-read energy.")
	return nil
}
