package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAcceleratorDSERuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table II sweep on SegFormer ADE B2:",
		"Pareto-optimal:",
		"Most expensive layers by energy/MAC",
		"Custom weight-buffer sweep",
		"E/wb=1024KB",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
