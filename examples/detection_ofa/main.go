// Detection backbone demo: the DETR-family detectors put 80+% of their
// FLOPs in the ResNet-50 backbone (Section III-B), so the paper modulates
// that CNN with Once-For-All subnets (Section V-C). This example profiles
// the detectors across image sizes and replays OFA switching on
// accelerator E.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"vitdyn"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, writing its narrative to w (separated from
// main so the example is testable in-process).
func run(w io.Writer) error {
	// 1. Where do detection FLOPs go? (Fig. 1)
	fmt.Fprintln(w, "DETR-family FLOP split at detection image sizes:")
	for _, v := range []vitdyn.DETRVariant{vitdyn.DETR, vitdyn.DABDETR, vitdyn.AnchorDETR, vitdyn.ConditionalDETR} {
		g, err := vitdyn.NewDETR(v, 800, 1216)
		if err != nil {
			return err
		}
		p := vitdyn.ProfileFLOPs(g, 1)
		fmt.Fprintf(w, "  %-17s %5.1f GFLOPs, conv share %.0f%%\n", v, p.GFLOPs(), 100*p.ConvShare())
	}

	// 2. The OFA ResNet-50 ladder on accelerator E (Fig. 13).
	cat, err := vitdyn.OFARDDCatalog(vitdyn.TargetAcceleratorEEnergy())
	if err != nil {
		return err
	}
	full := cat.Full()
	fmt.Fprintf(w, "\nOFA ResNet-50 subnets on accelerator E (energy-costed):\n")
	for i := len(cat.Paths) - 1; i >= 0; i-- {
		p := cat.Paths[i]
		fmt.Fprintf(w, "  %-18s %6.3f mJ (%4.0f%% saved)  top-1 %.4f (-%.2f%%)\n",
			p.Label, p.Cost, 100*(1-p.Cost/full.Cost), p.Accuracy, 100*(full.Accuracy-p.Accuracy))
	}

	// 3. Dynamic backbone switching under a contended energy budget.
	frames := 2000
	tr := vitdyn.BurstyTrace(frames, full.Cost*0.45, full.Cost*1.05, 0.35, 99)
	dyn := cat.Simulate(tr)
	stat := vitdyn.SimulateStaticPath(full, tr)
	fmt.Fprintf(w, "\nbursty energy budget over %d frames:\n", frames)
	fmt.Fprintf(w, "  dynamic OFA switching: eff top-1 %.4f, 0 skipped\n", dyn.EffectiveAccuracy())
	fmt.Fprintf(w, "  static full backbone:  eff top-1 %.4f, %d frames skipped\n",
		stat.EffectiveAccuracy(), stat.Skipped)
	return nil
}
