package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestDetectionOFARuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"DETR-family FLOP split",
		"OFA ResNet-50 subnets on accelerator E",
		"ofa-full",
		"bursty energy budget over 2000 frames:",
		"dynamic OFA switching",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
