// Segmentation RDD demo: an autonomous-driving-style scenario (the paper's
// Section I motivation) where a SegFormer segmentation model shares an
// embedded accelerator with other workloads. The resource budget per frame
// fluctuates; the RDD controller switches execution paths per frame and is
// compared against the two static alternatives the paper discusses.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"vitdyn"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, writing its narrative to w (separated from
// main so the example is testable in-process).
func run(w io.Writer) error {
	target := vitdyn.TargetAcceleratorE()

	// Pretrained pruning catalog (no retraining required: one set of
	// weights, subsets used at runtime — Section V-E).
	pre, err := vitdyn.SegFormerRDDCatalog("ADE", target, 256)
	if err != nil {
		return err
	}
	// Retrained switching catalog (B0/B1/B2: three stored weight sets).
	ret, err := vitdyn.SegFormerRetrainedRDDCatalog("ADE", target)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "pretrained catalog: %d Pareto paths, %.2f..%.2f ms, mIoU %.4f..%.4f\n",
		len(pre.Paths), pre.Cheapest().Cost, pre.Full().Cost,
		pre.Cheapest().Accuracy, pre.Full().Accuracy)
	fmt.Fprintf(w, "retrained catalog:  %d models,      %.2f..%.2f ms, mIoU %.4f..%.4f\n\n",
		len(ret.Paths), ret.Cheapest().Cost, ret.Full().Cost,
		ret.Cheapest().Accuracy, ret.Full().Accuracy)

	// Scenario: 30% of frames arrive while a planner burst holds the
	// accelerator, leaving ~55% of the budget.
	frames := 3000
	lo := pre.Full().Cost * 0.55
	hi := pre.Full().Cost * 1.10
	for _, tc := range []struct {
		name  string
		trace vitdyn.ResourceTrace
	}{
		{"sinusoid", vitdyn.SinusoidTrace(frames, lo, hi, 150)},
		{"step", vitdyn.StepTrace(frames, lo, hi, 75)},
		{"bursty", vitdyn.BurstyTrace(frames, lo, hi, 0.3, 1234)},
	} {
		dyn := pre.Simulate(tc.trace)
		retDyn := ret.Simulate(tc.trace)
		stFull := vitdyn.SimulateStaticPath(pre.Full(), tc.trace)
		stWorst := vitdyn.SimulateStaticPath(pre.Cheapest(), tc.trace)

		fmt.Fprintf(w, "trace %-9s dynamic(pretrained) eff-mIoU %.4f | dynamic(retrained) %.4f | static-full %.4f (skips %d) | static-worst %.4f\n",
			tc.name, dyn.EffectiveAccuracy(), retDyn.EffectiveAccuracy(),
			stFull.EffectiveAccuracy(), stFull.Skipped, stWorst.EffectiveAccuracy())
	}

	fmt.Fprintln(w, "\nThe dynamic policies dominate both static choices on every trace;")
	fmt.Fprintln(w, "retrained switching is the ceiling, pretrained pruning the floor (Section V-E).")
	return nil
}
