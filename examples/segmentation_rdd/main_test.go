package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestSegmentationRDDRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"pretrained catalog:",
		"retrained catalog:",
		"trace sinusoid",
		"trace step",
		"trace bursty",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}
