// Package vitdyn is the public API of this repository: a full
// reproduction, in pure Go, of "Vision Transformer Computation and
// Resilience for Dynamic Inference" (ISPASS 2024).
//
// It exposes four capabilities:
//
//  1. An analytical model zoo (SegFormer, Swin+UPerNet, the DETR family,
//     ResNet-50/OFA, ViT) whose layer graphs reproduce the paper's FLOP and
//     parameter counts (Table I).
//  2. Execution-cost models: an NVIDIA RTX A5000 latency model and a
//     MAGNet accelerator simulator with the paper's thirteen Table II
//     parameterizations (Sections III-C and IV).
//  3. The alternative-execution-path machinery of Section V: pruning
//     pretrained SegFormer/Swin models, paper-anchored accuracy resilience
//     surfaces, and the Once-For-All ResNet-50 subnet family.
//  4. The RDD (resource-dependent dynamic) inference runtime: path
//     catalogs, budget-driven path selection, and trace-replay simulation.
//  5. A serving layer (the vitdynd daemon): HTTP catalog/profiling
//     endpoints over a process-wide, LRU-evicting cost store shared
//     across requests.
//
// The subpackage types are re-exported here as aliases so downstream code
// only imports vitdyn. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-versus-measured results of every table and
// figure.
package vitdyn

import (
	"context"
	"io"

	"vitdyn/internal/accuracy"
	"vitdyn/internal/core"
	"vitdyn/internal/costdb"
	"vitdyn/internal/engine"
	"vitdyn/internal/flops"
	"vitdyn/internal/gpu"
	"vitdyn/internal/graph"
	"vitdyn/internal/magnet"
	"vitdyn/internal/nn"
	"vitdyn/internal/obs"
	"vitdyn/internal/pareto"
	"vitdyn/internal/prune"
	"vitdyn/internal/rdd"
	"vitdyn/internal/report"
	"vitdyn/internal/serve"
)

// --- Layer graph IR ---

// Graph is an ordered list of layers describing one inference.
type Graph = graph.Graph

// Layer is one operator instance with concrete shapes.
type Layer = graph.Layer

// Kind identifies an operator class.
type Kind = graph.Kind

// Operator kinds.
const (
	Conv2D      = graph.Conv2D
	DWConv2D    = graph.DWConv2D
	Linear      = graph.Linear
	MatMul      = graph.MatMul
	Softmax     = graph.Softmax
	LayerNorm   = graph.LayerNorm
	BatchNorm   = graph.BatchNorm
	ReLU        = graph.ReLU
	GELU        = graph.GELU
	Add         = graph.Add
	Interpolate = graph.Interpolate
	Concat      = graph.Concat
	Pool        = graph.Pool
	Reshape     = graph.Reshape
)

// --- Model zoo ---

// SegFormerConfig configures a MiT encoder + all-MLP decoder build.
type SegFormerConfig = nn.SegFormerConfig

// SwinConfig configures a Swin + UPerNet build.
type SwinConfig = nn.SwinConfig

// ResNetConfig configures a (possibly elastic) ResNet build.
type ResNetConfig = nn.ResNetConfig

// OFASubnet is one Once-For-All ResNet-50 subnet with its top-1 accuracy.
type OFASubnet = nn.OFASubnet

// DETRVariant selects a DETR-family detector.
type DETRVariant = nn.DETRVariant

// DETR-family variants.
const (
	DETR            = nn.DETR
	DABDETR         = nn.DABDETR
	AnchorDETR      = nn.AnchorDETR
	ConditionalDETR = nn.ConditionalDETR
)

// NewSegFormer builds a SegFormer variant ("B0".."B5") for numClasses at
// the given input size.
func NewSegFormer(variant string, numClasses, imgH, imgW int) (*Graph, error) {
	cfg, err := nn.SegFormerB(variant, numClasses)
	if err != nil {
		return nil, err
	}
	return nn.SegFormer(cfg, imgH, imgW)
}

// NewSwin builds a Swin variant ("Tiny", "Small", "Base") with the UPerNet
// decode head.
func NewSwin(variant string, numClasses, imgH, imgW int) (*Graph, error) {
	cfg, err := nn.SwinVariant(variant, numClasses)
	if err != nil {
		return nil, err
	}
	return nn.Swin(cfg, imgH, imgW)
}

// NewDETR builds a DETR-family detector with its ResNet-50 backbone.
func NewDETR(variant DETRVariant, imgH, imgW int) (*Graph, error) {
	return nn.DETRModel(variant, imgH, imgW)
}

// NewResNet50 builds the standard ResNet-50.
func NewResNet50(imgH, imgW int, includeHead bool) (*Graph, error) {
	return nn.ResNet(nn.ResNet50(1000, includeHead), imgH, imgW)
}

// NewOFAResNet builds one OFA subnet.
func NewOFAResNet(sub OFASubnet, imgH, imgW int) (*Graph, error) {
	return nn.OFAResNet(sub, imgH, imgW)
}

// OFASubnets returns the Fig. 13 subnet catalog, largest first.
func OFASubnets() []OFASubnet { return nn.OFACatalog() }

// --- Profiling ---

// Profile is an analytical FLOP/parameter/traffic profile.
type Profile = flops.Profile

// ProfileFLOPs analyzes a graph at the given datatype width in bytes.
func ProfileFLOPs(g *Graph, bytesPerElem int) *Profile {
	return flops.Analyze(g, bytesPerElem)
}

// GPUDevice is an analytical GPU latency model.
type GPUDevice = gpu.Device

// GPUResult is a modeled GPU execution profile.
type GPUResult = gpu.Result

// A5000 returns the calibrated NVIDIA RTX A5000 model.
func A5000() GPUDevice { return gpu.A5000() }

// --- Accelerator simulation ---

// AcceleratorConfig is one MAGNet parameterization.
type AcceleratorConfig = magnet.Config

// AcceleratorResult is a simulated accelerator execution.
type AcceleratorResult = magnet.Result

// TableIIAccelerators returns the paper's thirteen parameterizations A-M.
func TableIIAccelerators() []AcceleratorConfig { return magnet.TableII() }

// AcceleratorE returns the paper's balanced design point.
func AcceleratorE() AcceleratorConfig { return magnet.AcceleratorE() }

// AcceleratorByName returns a Table II configuration by label.
func AcceleratorByName(name string) (AcceleratorConfig, error) { return magnet.ByName(name) }

// --- Pruning and resilience ---

// SegFormerPath is one SegFormer execution-path configuration.
type SegFormerPath = prune.SegFormerPath

// SwinPath is one Swin execution-path configuration.
type SwinPath = prune.SwinPath

// SegFormerResilience is the anchored SegFormer accuracy surface.
type SegFormerResilience = accuracy.SegFormerResilience

// SwinResilience is the Swin accuracy surface.
type SwinResilience = accuracy.SwinResilience

// TableIIIPaths returns the paper's named B2..B2f configurations.
func TableIIIPaths() []SegFormerPath { return prune.TableIII() }

// ApplySegFormerPath builds the pruned SegFormer graph for a path.
func ApplySegFormerPath(cfg SegFormerConfig, imgH, imgW int, p SegFormerPath) (*Graph, error) {
	return prune.ApplySegFormer(cfg, imgH, imgW, p)
}

// ApplySwinPath builds the pruned Swin graph for a path.
func ApplySwinPath(cfg SwinConfig, imgH, imgW int, p SwinPath) (*Graph, error) {
	return prune.ApplySwin(cfg, imgH, imgW, p)
}

// SegFormerADEResilience returns the Table III-anchored ADE20K surface.
func SegFormerADEResilience() *SegFormerResilience { return accuracy.NewSegFormerADE() }

// SegFormerCityResilience returns the Cityscapes surface.
func SegFormerCityResilience() *SegFormerResilience { return accuracy.NewSegFormerCity() }

// --- RDD inference ---

// RDDPath is one executable configuration with cost and accuracy.
type RDDPath = rdd.Path

// RDDCatalog is a Pareto-reduced set of execution paths.
type RDDCatalog = rdd.Catalog

// ResourceTrace is a sequence of per-frame budgets.
type ResourceTrace = rdd.Trace

// RDDSimResult summarizes replaying a trace.
type RDDSimResult = rdd.SimResult

// CostBackend prices one inference of a graph on an execution substrate.
// It replaced the closed execution-target struct: any implementation —
// the built-in GPU latency model, the MAGNet time/energy simulations, the
// FLOPs proxy, or user code — can drive catalog construction.
type CostBackend = engine.CostBackend

// ExecutionTarget is the legacy name for CostBackend.
type ExecutionTarget = engine.CostBackend

// SweepCandidate is one labeled execution path awaiting costing.
type SweepCandidate = engine.Candidate

// SweepCandidateSeq is a push generator of candidates — the streaming
// equivalent of a []SweepCandidate, consumable with range-over-func.
type SweepCandidateSeq = engine.CandidateSeq

// SweepResult is one costed candidate. In streaming sweeps a candidate's
// failure travels in-band in Err; slice-based sweeps return the error
// instead and leave Err nil.
type SweepResult = engine.Result

// StreamStats counts candidates through the streaming catalog pipeline:
// generated, pre-filtered before backend costing, costed, and admitted to
// the running Pareto frontier.
type StreamStats = engine.StreamStats

// StreamOptions tunes the streaming pipeline — chiefly the FLOPs-proxy
// admission pre-filter margin: positive enables it, negative disables,
// and 0 (the default) enables it only for backends declaring
// engine.FLOPsMonotone (all built-in backends do; custom backends cost
// every candidate unless they opt in).
type StreamOptions = engine.StreamOptions

// SweepEngine fans candidate costing out across a worker pool with a
// memoized, signature-keyed cost cache and deterministic result order.
type SweepEngine = engine.Engine

// NewSweepEngine returns an engine over the backend; workers <= 0 selects
// GOMAXPROCS, workers == 1 is sequential.
func NewSweepEngine(backend CostBackend, workers int) *SweepEngine {
	return engine.New(backend, workers)
}

// TargetGPU costs paths on the modeled A5000.
func TargetGPU() CostBackend { return core.TargetGPU() }

// TargetAcceleratorE costs paths by time on accelerator E.
func TargetAcceleratorE() CostBackend { return core.TargetAcceleratorE() }

// TargetAcceleratorEEnergy costs paths by energy on accelerator E.
func TargetAcceleratorEEnergy() CostBackend { return core.TargetAcceleratorEEnergy() }

// TargetFLOPs costs paths by analytical GMACs — the fast smoke-costing
// proxy backend.
func TargetFLOPs() CostBackend { return core.TargetFLOPs() }

// GPUBackend costs paths on an arbitrary GPU device model.
func GPUBackend(d GPUDevice) CostBackend { return engine.GPU(d) }

// AcceleratorTimeBackend costs paths by simulated time on an arbitrary
// accelerator configuration.
func AcceleratorTimeBackend(c AcceleratorConfig) CostBackend { return engine.MagnetTime(c) }

// AcceleratorEnergyBackend costs paths by simulated energy.
func AcceleratorEnergyBackend(c AcceleratorConfig) CostBackend { return engine.MagnetEnergy(c) }

// MultiCostBackend prices several metrics from one evaluation — e.g.
// accelerator time AND energy from a single MAGNet simulation pass.
type MultiCostBackend = engine.MultiCostBackend

// AcceleratorTimeEnergyBackend returns a vector backend producing
// [time ms, energy mJ] on the accelerator from one simulation, halving
// accelerator work for sweeps needing both metrics. As a plain
// CostBackend it costs by time.
func AcceleratorTimeEnergyBackend(c AcceleratorConfig) MultiCostBackend {
	return engine.MagnetTimeEnergy(c)
}

// --- Serving ---

// CostStore is a process-wide, sharded, LRU-evicting (backend, graph
// signature) → cost store with hit/miss/eviction counters. Engines built
// with NewSweepEngineWithStore — and every engine the vitdynd server
// creates — share one store, so overlapping sweeps across requests reuse
// each other's costed shapes.
type CostStore = serve.Store

// CostStoreStats is a point-in-time snapshot of a store's counters.
type CostStoreStats = serve.StoreStats

// NewCostStore returns a store holding at most capacity entries,
// rounded up to a multiple of the shard count (capacity <= 0 selects
// the default).
func NewCostStore(capacity int) *CostStore { return serve.NewStore(capacity) }

// NewSweepEngineWithStore returns an engine whose costs are memoized in
// the shared store instead of a private per-engine cache.
func NewSweepEngineWithStore(backend CostBackend, workers int, store *CostStore) *SweepEngine {
	return engine.NewWithCache(backend, workers, store)
}

// SweepCostCache is the memoization interface shared across engines:
// (backend name, graph signature) → cost vector. CostStore and
// PersistentCostStore both implement it.
type SweepCostCache = engine.CostCache

// NewSweepEngineWithCache returns an engine memoized in any
// SweepCostCache — e.g. a PersistentCostStore, so sweeps write through
// to disk.
func NewSweepEngineWithCache(backend CostBackend, workers int, cache SweepCostCache) *SweepEngine {
	return engine.NewWithCache(backend, workers, cache)
}

// PersistentCostStore is the durable tier beneath a cost cache: a
// versioned, checksummed binary snapshot plus an append-only WAL of
// cost inserts (auto-compacted), composed over any SweepCostCache. It
// is what vitdynd's -store-path and the cmds' -cache-path open: costed
// shapes survive restarts, and ExportTo/Import stream the snapshot
// format so one process can seed another.
type PersistentCostStore = costdb.Persistent

// PersistentCostStoreOptions tunes compaction thresholds; the zero
// value selects the defaults.
type PersistentCostStoreOptions = costdb.Options

// PersistentCostStoreStats is a point-in-time view of the durable tier.
type PersistentCostStoreStats = costdb.Stats

// OpenPersistentCostStore loads (or initializes) a durable cost store
// in dir over the given fast tier (nil selects a built-in map cache):
// snapshot read whole and checksum-verified, WAL replayed with a torn
// tail truncated, every loaded entry pre-warming the fast tier.
func OpenPersistentCostStore(dir string, inner SweepCostCache, opts PersistentCostStoreOptions) (*PersistentCostStore, error) {
	return costdb.Open(dir, inner, opts)
}

// BackendEvaluations returns the cumulative number of genuine backend
// cost evaluations this process has performed (memo hits at any cache
// tier do not count) — the observability hook warm-boot tests assert
// "zero backend evaluations" with.
func BackendEvaluations() int64 { return engine.BackendEvals() }

// CostEpocher is optionally implemented by cost backends that version
// their cost model: Epoch() returns a monotonically bumped constant, and
// any change to the backend's pricing must bump it. The epoch keeps
// cached costs honest — it is folded into every cost-store key, stamped
// into persisted costdb entries, and invalidates catalog-cache entries.
type CostEpocher = engine.Epocher

// BackendCostEpoch returns the backend's cost-model epoch fingerprint
// (never zero) and registers it as the backend's current epoch for
// StaleCostEpoch queries. Two processes running the same backend code
// compute the same fingerprint, so persisted costs transfer.
func BackendCostEpoch(b CostBackend) uint64 { return engine.BackendEpoch(b) }

// StaleCostEpoch reports whether epoch is a superseded cost-model epoch
// for the named backend — true only when the backend has registered a
// different current epoch in this process. It is the canonical
// PersistentCostStoreOptions.StaleEpoch policy: compaction retires
// entries priced under an old cost model.
func StaleCostEpoch(backend string, epoch uint64) bool { return engine.StaleEpoch(backend, epoch) }

// SetCostEpochSalt perturbs every subsequently computed backend epoch
// process-wide — a forced global cache invalidation for tests and
// operational escape hatches. Zero (the default) means no perturbation.
func SetCostEpochSalt(salt uint64) { engine.SetEpochSalt(salt) }

// ServeOptions configures the serving layer: the shared store, the
// per-request worker cap, the server-wide concurrent-sweep limit and the
// request timeout. The zero value selects sensible defaults.
type ServeOptions = serve.Options

// RDDServer is the HTTP serving layer behind the vitdynd daemon:
// /v1/catalog, /v1/batch, /v1/replay, /v1/profile, /v1/backends,
// /healthz and /statsz over one shared cost store, every catalog built
// through the streaming pipeline.
type RDDServer = serve.Server

// ReplayRequest is the POST /v1/replay body: one catalog spec plus one
// (Trace) or many (Traces) declarative trace specs, replayed server-side
// under each requested path-selection policy.
type ReplayRequest = serve.ReplayRequest

// ReplayResponse is the /v1/replay response: the built catalog's
// identity plus one ReplayTraceResult per requested trace.
type ReplayResponse = serve.ReplayResponse

// ReplayTraceResult is one trace's replay across every policy.
type ReplayTraceResult = serve.ReplayTraceResult

// ReplayPolicyResult is one policy's replay outcome over one trace.
type ReplayPolicyResult = serve.ReplayPolicyResult

// CatalogResultCache is the serving layer's catalog-level result cache:
// a bounded LRU of built catalogs keyed by canonicalized request spec,
// invalidated when the backend's cost-model epoch changes. Read it off a
// server with RDDServer.CatalogCache().
type CatalogResultCache = serve.CatalogCache

// CatalogResultCacheStats is a point-in-time snapshot of the catalog
// cache counters — the /statsz catalog_cache section.
type CatalogResultCacheStats = serve.CatalogCacheStats

// NewRDDServer builds a server; mount its Handler() on any http.Server.
func NewRDDServer(opts ServeOptions) *RDDServer { return serve.NewServer(opts) }

// Serve runs the serving layer on addr until ctx is cancelled, then
// drains in-flight requests and returns — the programmatic equivalent of
// the vitdynd daemon.
func Serve(ctx context.Context, addr string, opts ServeOptions) error {
	return serve.ListenAndServe(ctx, addr, opts, nil)
}

// SegFormerRDDCatalog builds the pretrained-pruning catalog for SegFormer
// B2 on "ADE" or "City". channelStep controls sweep granularity (0 for the
// default). Construction streams: candidates are generated, pre-filtered
// against a FLOPs-proxy frontier, costed across GOMAXPROCS workers and
// reduced incrementally — byte-identical to a batch build. For explicit
// worker control, sweep the corresponding *Candidates list with
// NewSweepEngine — e.g.
//
//	name, cands, _ := vitdyn.SegFormerSweepCandidates("ADE", 512)
//	cat, err := vitdyn.NewSweepEngine(backend, 4).Catalog(name, cands)
func SegFormerRDDCatalog(dataset string, target CostBackend, channelStep int) (*RDDCatalog, error) {
	return core.SegFormerCatalog(dataset, target, channelStep, 0)
}

// SegFormerRDDCatalogStream is SegFormerRDDCatalog with the streaming
// pipeline's counters: how many candidates were generated, pre-filtered
// before any backend evaluation, costed, and admitted to the frontier.
func SegFormerRDDCatalogStream(ctx context.Context, dataset string, target CostBackend, channelStep int) (*RDDCatalog, StreamStats, error) {
	return core.SegFormerCatalogStream(ctx, dataset, target, channelStep, 0)
}

// SegFormerSweepCandidates enumerates the pretrained SegFormer B2
// pruning sweep (catalog name + candidates) for sweeping with a custom
// engine.
func SegFormerSweepCandidates(dataset string, channelStep int) (string, []SweepCandidate, error) {
	return core.SegFormerCandidates(dataset, channelStep)
}

// SegFormerRetrainedSweepCandidates enumerates the B0/B1/B2 switching
// family.
func SegFormerRetrainedSweepCandidates(dataset string) (string, []SweepCandidate, error) {
	return core.SegFormerRetrainedCandidates(dataset)
}

// SwinSweepCandidates enumerates the Swin pruning sweep for a variant.
func SwinSweepCandidates(variant string, channelStep int) (string, []SweepCandidate, error) {
	return core.SwinCandidates(variant, channelStep)
}

// SwinRetrainedSweepCandidates enumerates the Tiny/Small/Base switching
// family.
func SwinRetrainedSweepCandidates() (string, []SweepCandidate, error) {
	return core.SwinRetrainedCandidates()
}

// OFASweepCandidates enumerates the Once-For-All ResNet-50 subnet ladder.
func OFASweepCandidates() (string, []SweepCandidate, error) {
	return core.OFACandidates()
}

// SegFormerRetrainedRDDCatalog builds the B0/B1/B2 switching catalog.
func SegFormerRetrainedRDDCatalog(dataset string, target CostBackend) (*RDDCatalog, error) {
	return core.SegFormerRetrainedCatalog(dataset, target, 0)
}

// SwinRDDCatalog builds the Swin pruning catalog.
func SwinRDDCatalog(variant string, target CostBackend, channelStep int) (*RDDCatalog, error) {
	return core.SwinCatalog(variant, target, channelStep, 0)
}

// SwinRDDCatalogStream is SwinRDDCatalog with stream stats.
func SwinRDDCatalogStream(ctx context.Context, variant string, target CostBackend, channelStep int) (*RDDCatalog, StreamStats, error) {
	return core.SwinCatalogStream(ctx, variant, target, channelStep, 0)
}

// SwinRetrainedRDDCatalog builds the Tiny/Small/Base switching catalog.
func SwinRetrainedRDDCatalog(target CostBackend) (*RDDCatalog, error) {
	return core.SwinRetrainedCatalog(target, 0)
}

// OFARDDCatalog builds the Once-For-All ResNet-50 switching catalog.
func OFARDDCatalog(target CostBackend) (*RDDCatalog, error) {
	return core.OFACatalog(target, 0)
}

// OFARDDCatalogStream is OFARDDCatalog with stream stats.
func OFARDDCatalogStream(ctx context.Context, target CostBackend) (*RDDCatalog, StreamStats, error) {
	return core.OFACatalogStream(ctx, target, 0)
}

// TraceSpec is the declarative form of a resource trace — a generator
// kind plus its parameters, decodable from JSON. It is the one trace
// format the rddsim CLI (-trace-spec) and the vitdynd /v1/replay
// endpoint share.
type TraceSpec = rdd.TraceSpec

// TraceGenerator materializes a trace from a spec.
type TraceGenerator = rdd.TraceGenerator

// BuildTrace resolves a spec's kind through the trace-generator registry
// and materializes the trace.
func BuildTrace(s TraceSpec) (ResourceTrace, error) { return s.Build() }

// RegisterTraceKind adds (or replaces) a trace generator under a kind
// name, extending what BuildTrace — and every TraceSpec consumer, the
// serving layer included — can resolve.
func RegisterTraceKind(kind string, gen TraceGenerator) error {
	return rdd.RegisterTraceKind(kind, gen)
}

// TraceKinds lists every registered trace kind, sorted.
func TraceKinds() []string { return rdd.TraceKinds() }

// ErrBudgetInfeasible reports a budget below a catalog's cheapest path;
// match with errors.Is. The concrete error is *BudgetError.
var ErrBudgetInfeasible = rdd.ErrBudgetInfeasible

// BudgetError carries the catalog, the offending budget and the cheapest
// cost it failed to cover.
type BudgetError = rdd.BudgetError

// SinusoidTrace, StepTrace and BurstyTrace generate synthetic resource
// budgets; see internal/rdd for semantics.
func SinusoidTrace(frames int, lo, hi float64, period int) ResourceTrace {
	return rdd.SinusoidTrace(frames, lo, hi, period)
}

// StepTrace alternates between hi and lo budgets every stride frames.
func StepTrace(frames int, lo, hi float64, stride int) ResourceTrace {
	return rdd.StepTrace(frames, lo, hi, stride)
}

// BurstyTrace is a reproducible two-state Markov load.
func BurstyTrace(frames int, lo, hi, busyFrac float64, seed uint64) ResourceTrace {
	return rdd.BurstyTrace(frames, lo, hi, busyFrac, seed)
}

// ReadValuesTraceFile loads a recorded per-frame load trace from a CSV
// or newline-delimited file — the file form behind the "values-file"
// TraceSpec kind (resolved client-side; servers accept inline values).
func ReadValuesTraceFile(path string) (ResourceTrace, error) {
	return rdd.ReadValuesFile(path)
}

// SimulateStaticPath replays a trace with one fixed path.
func SimulateStaticPath(p RDDPath, tr ResourceTrace) RDDSimResult {
	return rdd.SimulateStatic(p, tr)
}

// EarlyExitModel is the input-dependent dynamic-inference baseline the
// paper contrasts with (Sections I and VI).
type EarlyExitModel = rdd.EarlyExitModel

// NewEarlyExitBaseline derives an early-exit baseline sharing a catalog's
// cost/accuracy frontier, with easyShare of inputs exiting at the first head.
func NewEarlyExitBaseline(c *RDDCatalog, easyShare float64) (*EarlyExitModel, error) {
	return rdd.EarlyExitFromCatalog(c, easyShare)
}

// --- Observability ---

// MetricsRegistry is the zero-dependency metrics core behind GET
// /metrics: counters, gauges, func-backed series and fixed-bucket
// latency histograms, rendered in Prometheus text exposition format.
// Every RDDServer owns one (RDDServer.Metrics()); register your own
// series on it, or pass a shared registry via ServeOptions.Metrics.
type MetricsRegistry = obs.Registry

// MetricLabel is one name/value label pair on a registered series.
type MetricLabel = obs.Label

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// LatencyHistogram is a fixed-bucket histogram with lock-free observes
// and mergeable snapshots — the type behind both the server's per-route
// latency series and loadgen's client-side percentiles.
type LatencyHistogram = obs.Histogram

// LatencyHistogramSnapshot is a point-in-time copy of a histogram,
// mergeable across histograms with identical bounds and queryable for
// interpolated quantiles.
type LatencyHistogramSnapshot = obs.HistogramSnapshot

// NewLatencyHistogram returns a histogram over the given ascending
// upper bounds (in seconds); nil selects DefaultLatencyBuckets.
func NewLatencyHistogram(bounds []float64) *LatencyHistogram { return obs.NewHistogram(bounds) }

// DefaultLatencyBuckets are the quarter-octave (ratio 2^1/4) bounds from
// 10µs to ~10.5s that every built-in latency series uses — fine enough
// that interpolated quantiles stay within ~±9%.
func DefaultLatencyBuckets() []float64 { return obs.DefaultLatencyBuckets }

// RequestTrace collects named stage spans for one request; the serving
// layer attaches one to ?debug=trace requests and returns its spans in
// the response's trace block. A nil *RequestTrace is valid and free, so
// instrumented code paths need no conditionals.
type RequestTrace = obs.Trace

// TraceStageSpan is one named, timed stage within a request trace.
type TraceStageSpan = obs.Span

// AccessLogger serializes one structured line per HTTP request (text or
// JSON); wire one into ServeOptions.AccessLog.
type AccessLogger = obs.AccessLogger

// AccessLogEntry is the shape of one access-log line.
type AccessLogEntry = obs.AccessEntry

// NewAccessLogger returns a logger writing to w in the given format.
func NewAccessLogger(w io.Writer, format obs.LogFormat) *AccessLogger {
	return obs.NewAccessLogger(w, format)
}

// Access-log formats.
const (
	AccessLogText = obs.TextFormat
	AccessLogJSON = obs.JSONFormat
)

// BuildVersion reports this binary's module version, Go version and VCS
// revision — the /versionz payload.
type BuildVersion = obs.BuildInfo

// Version returns the running binary's build info.
func Version() BuildVersion { return obs.Version() }

// SweepStageTimings accumulates per-stage worker time
// (generate/prefilter/cost/frontier) across a streaming catalog build
// when attached via StreamOptions.Timings; nil (the default) records
// nothing and costs nothing.
type SweepStageTimings = engine.StageTimings

// SweepStageDurations is a point-in-time read of SweepStageTimings.
type SweepStageDurations = engine.StageDurations

// --- Pareto / reporting utilities ---

// ParetoPoint is a cost/value candidate.
type ParetoPoint = pareto.Point

// ParetoFrontier extracts the non-dominated subset.
func ParetoFrontier(points []ParetoPoint) []ParetoPoint { return pareto.Frontier(points) }

// ParetoFrontierBuilder maintains a frontier incrementally: insert a
// point, learn immediately whether it is dominated, read the sorted
// frontier on demand — the primitive behind streaming catalog reduction.
type ParetoFrontierBuilder = pareto.FrontierBuilder

// NewParetoFrontierBuilder returns an empty incremental frontier.
func NewParetoFrontierBuilder() *ParetoFrontierBuilder { return pareto.NewFrontierBuilder() }

// NewRDDCatalogFromBuilder builds a catalog directly from an
// incrementally reduced frontier — identical to batch construction over
// the same points, with no intermediate path slice.
func NewRDDCatalogFromBuilder(model string, b *ParetoFrontierBuilder) (*RDDCatalog, error) {
	return rdd.NewCatalogFromBuilder(model, b)
}

// ReportTable is an aligned text/CSV table.
type ReportTable = report.Table

// NewReportTable creates a table with a title and column headers.
func NewReportTable(title string, headers ...string) *ReportTable {
	return report.NewTable(title, headers...)
}
