module vitdyn

go 1.24
