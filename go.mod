module vitdyn

go 1.23
