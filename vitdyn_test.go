package vitdyn

import "testing"

// TestPublicAPIEndToEnd walks the quickstart flow through the façade:
// build, profile, simulate, catalog, select.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := NewSegFormer("B2", 150, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileFLOPs(g, 1)
	if gf := p.GFLOPs(); gf < 61 || gf > 65 {
		t.Errorf("GFLOPs = %.1f", gf)
	}
	if r := A5000().Run(g); r.Total <= 0 || r.ConvTimeShare() <= 0 {
		t.Error("GPU model failed")
	}
	ar, err := AcceleratorE().Simulate(g)
	if err != nil || ar.TotalSeconds <= 0 {
		t.Fatalf("accelerator simulation failed: %v", err)
	}
	cat, err := SegFormerRDDCatalog("ADE", TargetAcceleratorE(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Select(cat.Full().Cost); !ok {
		t.Error("selection at full budget failed")
	}
	tr := StepTrace(100, cat.Cheapest().Cost, cat.Full().Cost, 10)
	if sim := cat.Simulate(tr); sim.Completed != 100 {
		t.Errorf("completed %d of 100 frames", sim.Completed)
	}
}

func TestPublicModelBuilders(t *testing.T) {
	if _, err := NewSwin("Tiny", 150, 512, 512); err != nil {
		t.Error(err)
	}
	if _, err := NewDETR(DETR, 800, 1216); err != nil {
		t.Error(err)
	}
	if _, err := NewResNet50(224, 224, true); err != nil {
		t.Error(err)
	}
	subs := OFASubnets()
	if len(subs) < 8 {
		t.Fatalf("OFA catalog size %d", len(subs))
	}
	if _, err := NewOFAResNet(subs[0], 224, 224); err != nil {
		t.Error(err)
	}
	if _, err := NewSegFormer("B9", 150, 512, 512); err == nil {
		t.Error("bad variant accepted")
	}
	if _, err := NewSwin("Huge", 150, 512, 512); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestPublicPruningFlow(t *testing.T) {
	paths := TableIIIPaths()
	if len(paths) != 7 {
		t.Fatalf("Table III paths = %d", len(paths))
	}
	cfg := SegFormerConfig{}
	if _, err := ApplySegFormerPath(cfg, 512, 512, paths[0]); err == nil {
		t.Error("zero config accepted")
	}
	res := SegFormerADEResilience()
	if m := res.Pretrained(paths[6]); m < 0.33 || m > 0.34 {
		t.Errorf("B2f mIoU = %.4f, want 0.3345", m)
	}
	if SegFormerCityResilience().Baseline != 0.8098 {
		t.Error("City baseline wrong")
	}
}

func TestPublicAccelerators(t *testing.T) {
	if len(TableIIAccelerators()) != 13 {
		t.Error("Table II size")
	}
	if c, err := AcceleratorByName("G"); err != nil || c.WeightBufKB != 64 {
		t.Errorf("accelerator G lookup: %+v, %v", c, err)
	}
	if _, err := AcceleratorByName("Z"); err == nil {
		t.Error("bad name accepted")
	}
}

func TestPublicParetoAndReport(t *testing.T) {
	pts := []ParetoPoint{{Cost: 1, Value: 1, Tag: "a"}, {Cost: 2, Value: 0.5, Tag: "b"}}
	if f := ParetoFrontier(pts); len(f) != 1 || f[0].Tag != "a" {
		t.Errorf("frontier = %v", f)
	}
	tbl := NewReportTable("t", "x", "y")
	tbl.AddRowf("v", 1.5)
	if s := tbl.String(); s == "" {
		t.Error("empty render")
	}
}
