package vitdyn

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd walks the quickstart flow through the façade:
// build, profile, simulate, catalog, select.
func TestPublicAPIEndToEnd(t *testing.T) {
	g, err := NewSegFormer("B2", 150, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	p := ProfileFLOPs(g, 1)
	if gf := p.GFLOPs(); gf < 61 || gf > 65 {
		t.Errorf("GFLOPs = %.1f", gf)
	}
	if r := A5000().Run(g); r.Total <= 0 || r.ConvTimeShare() <= 0 {
		t.Error("GPU model failed")
	}
	ar, err := AcceleratorE().Simulate(g)
	if err != nil || ar.TotalSeconds <= 0 {
		t.Fatalf("accelerator simulation failed: %v", err)
	}
	cat, err := SegFormerRDDCatalog("ADE", TargetAcceleratorE(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Select(cat.Full().Cost); !ok {
		t.Error("selection at full budget failed")
	}
	tr := StepTrace(100, cat.Cheapest().Cost, cat.Full().Cost, 10)
	if sim := cat.Simulate(tr); sim.Completed != 100 {
		t.Errorf("completed %d of 100 frames", sim.Completed)
	}
}

func TestPublicModelBuilders(t *testing.T) {
	if _, err := NewSwin("Tiny", 150, 512, 512); err != nil {
		t.Error(err)
	}
	if _, err := NewDETR(DETR, 800, 1216); err != nil {
		t.Error(err)
	}
	if _, err := NewResNet50(224, 224, true); err != nil {
		t.Error(err)
	}
	subs := OFASubnets()
	if len(subs) < 8 {
		t.Fatalf("OFA catalog size %d", len(subs))
	}
	if _, err := NewOFAResNet(subs[0], 224, 224); err != nil {
		t.Error(err)
	}
	if _, err := NewSegFormer("B9", 150, 512, 512); err == nil {
		t.Error("bad variant accepted")
	}
	if _, err := NewSwin("Huge", 150, 512, 512); err == nil {
		t.Error("bad variant accepted")
	}
}

func TestPublicPruningFlow(t *testing.T) {
	paths := TableIIIPaths()
	if len(paths) != 7 {
		t.Fatalf("Table III paths = %d", len(paths))
	}
	cfg := SegFormerConfig{}
	if _, err := ApplySegFormerPath(cfg, 512, 512, paths[0]); err == nil {
		t.Error("zero config accepted")
	}
	res := SegFormerADEResilience()
	if m := res.Pretrained(paths[6]); m < 0.33 || m > 0.34 {
		t.Errorf("B2f mIoU = %.4f, want 0.3345", m)
	}
	if SegFormerCityResilience().Baseline != 0.8098 {
		t.Error("City baseline wrong")
	}
}

func TestPublicAccelerators(t *testing.T) {
	if len(TableIIAccelerators()) != 13 {
		t.Error("Table II size")
	}
	if c, err := AcceleratorByName("G"); err != nil || c.WeightBufKB != 64 {
		t.Errorf("accelerator G lookup: %+v, %v", c, err)
	}
	if _, err := AcceleratorByName("Z"); err == nil {
		t.Error("bad name accepted")
	}
}

// TestPublicServingSurface walks the serving additions through the
// façade: a shared cost store across two engines, the HTTP server, and
// graceful Serve shutdown.
func TestPublicServingSurface(t *testing.T) {
	store := NewCostStore(512)
	name, cands, err := OFASweepCandidates()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewSweepEngineWithStore(TargetFLOPs(), 2, store).Catalog(name, cands)
	if err != nil {
		t.Fatal(err)
	}
	coldStats := store.Stats()
	warm, err := NewSweepEngineWithStore(TargetFLOPs(), 2, store).Catalog(name, cands)
	if err != nil {
		t.Fatal(err)
	}
	warmStats := store.Stats()
	if warmStats.Misses != coldStats.Misses || warmStats.Hits <= coldStats.Hits {
		t.Errorf("second engine did not reuse the store: cold %+v, warm %+v", coldStats, warmStats)
	}
	if fmt.Sprint(cold.Paths) != fmt.Sprint(warm.Paths) {
		t.Error("store-served catalog diverged from cold build")
	}

	// The HTTP layer over the same store: /statsz must reflect the
	// engine traffic above.
	ts := httptest.NewServer(NewRDDServer(ServeOptions{Store: store, Workers: 2}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Store CostStoreStats `json:"store"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("statsz JSON: %v", err)
	}
	if stats.Store.Misses != warmStats.Misses {
		t.Errorf("statsz store snapshot %+v diverges from engine-side stats %+v", stats.Store, warmStats)
	}

	// The programmatic Serve entry point shuts down on cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, "127.0.0.1:0", ServeOptions{Store: store}) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Serve returned %v after cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not shut down")
	}
}

func TestPublicParetoAndReport(t *testing.T) {
	pts := []ParetoPoint{{Cost: 1, Value: 1, Tag: "a"}, {Cost: 2, Value: 0.5, Tag: "b"}}
	if f := ParetoFrontier(pts); len(f) != 1 || f[0].Tag != "a" {
		t.Errorf("frontier = %v", f)
	}
	tbl := NewReportTable("t", "x", "y")
	tbl.AddRowf("v", 1.5)
	if s := tbl.String(); s == "" {
		t.Error("empty render")
	}
}

func TestPublicPersistentCostStore(t *testing.T) {
	dir := t.TempDir()
	store := NewCostStore(0)
	db, err := OpenPersistentCostStore(dir, store, PersistentCostStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSweepEngineWithCache(TargetFLOPs(), 2, db)
	g, err := NewResNet50(224, 224, true)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := eng.Cost(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the shape must price without a backend evaluation.
	db2, err := OpenPersistentCostStore(dir, NewCostStore(0), PersistentCostStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if st := db2.Stats(); st.LoadedEntries == 0 {
		t.Fatalf("warm open loaded nothing: %+v", st)
	}
	before := BackendEvaluations()
	warm, err := NewSweepEngineWithCache(TargetFLOPs(), 2, db2).Cost(g)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Errorf("warm cost %v != cold %v", warm, cold)
	}
	if n := BackendEvaluations() - before; n != 0 {
		t.Errorf("warm cost ran %d backend evaluations, want 0", n)
	}
}

func TestPublicHysteresisAndValuesFile(t *testing.T) {
	b := NewParetoFrontierBuilder()
	b.Insert(ParetoPoint{Cost: 2, Value: 0.5, Tag: "small"})
	b.Insert(ParetoPoint{Cost: 8, Value: 0.9, Tag: "big"})
	cat, err := NewRDDCatalogFromBuilder("m", b)
	if err != nil {
		t.Fatal(err)
	}
	tr := BurstyTrace(1000, 2.5, 9, 0.5, 3)
	free := cat.Simulate(tr)
	damped := cat.SimulateHysteresis(tr, 4)
	if damped.Switches >= free.Switches {
		t.Errorf("hysteresis switches %d did not drop below %d", damped.Switches, free.Switches)
	}
	path := filepath.Join(t.TempDir(), "load.csv")
	if err := os.WriteFile(path, []byte("9\n3\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := ReadValuesTraceFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if res := cat.Simulate(rec); res.Frames != 3 || res.Completed != 3 {
		t.Errorf("recorded replay %+v", res)
	}
}
