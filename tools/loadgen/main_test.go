package main

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"
	"time"
)

// benchLine mirrors tools/benchjson's parser: loadgen's -bench output
// must stay machine-readable by it or the CI gate silently loses the
// serving-latency benchmarks.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func TestLoadgenInProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an in-process server and generates load")
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-rate", "200", "-duration", "400ms", "-bench",
		"-mix", "catalog=4,replay=1,batch=1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	wantBench := map[string]bool{
		"BenchmarkLoadgen/catalog/p50": false,
		"BenchmarkLoadgen/catalog/p99": false,
		"BenchmarkLoadgen/replay/p50":  false,
		"BenchmarkLoadgen/batch/p50":   false,
		"BenchmarkLoadgen/all/p999":    false,
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "Benchmark") {
				t.Errorf("bench-prefixed line does not match the benchjson parser: %q", line)
			}
			continue
		}
		if _, tracked := wantBench[m[1]]; tracked {
			wantBench[m[1]] = true
		}
	}
	for name, seen := range wantBench {
		if !seen {
			t.Errorf("missing bench line %s in output:\n%s", name, stdout.String())
		}
	}
	if !strings.Contains(stdout.String(), "loadgen:") {
		t.Errorf("missing human summary in output:\n%s", stdout.String())
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	cases := [][]string{
		{"-rate", "0"},
		{"-duration", "-1s"},
		{"-mix", "catalog=4,bogus=1"},
		{"-mix", "catalog"},
		{"-mix", "catalog=-2"},
		{"-mix", "catalog=0,replay=0,batch=0"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestScheduleDeterministicWeightedRoundRobin(t *testing.T) {
	a := &kindState{name: "a", weight: 2}
	b := &kindState{name: "b", weight: 1}
	sched := schedule([]*kindState{a, b})
	var got []string
	for _, k := range sched {
		got = append(got, k.name)
	}
	want := []string{"a", "b", "a"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	lats := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(lats, 0.50); got != 6 {
		t.Errorf("p50 = %v, want 6", got)
	}
	if got := percentile(lats, 0.99); got != 10 {
		t.Errorf("p99 = %v, want 10", got)
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("p99 of empty = %v, want 0", got)
	}
}
