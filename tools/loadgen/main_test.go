package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"vitdyn/internal/obs"
)

// benchLine mirrors tools/benchjson's parser: loadgen's -bench output
// must stay machine-readable by it or the CI gate silently loses the
// serving-latency benchmarks.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

func TestLoadgenInProcessSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an in-process server and generates load")
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-rate", "200", "-duration", "400ms", "-bench",
		"-mix", "catalog=4,replay=1,batch=1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	wantBench := map[string]bool{
		"BenchmarkLoadgen/catalog/p50": false,
		"BenchmarkLoadgen/catalog/p99": false,
		"BenchmarkLoadgen/replay/p50":  false,
		"BenchmarkLoadgen/batch/p50":   false,
		"BenchmarkLoadgen/all/p999":    false,
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			if strings.HasPrefix(line, "Benchmark") {
				t.Errorf("bench-prefixed line does not match the benchjson parser: %q", line)
			}
			continue
		}
		if _, tracked := wantBench[m[1]]; tracked {
			wantBench[m[1]] = true
		}
	}
	for name, seen := range wantBench {
		if !seen {
			t.Errorf("missing bench line %s in output:\n%s", name, stdout.String())
		}
	}
	if !strings.Contains(stdout.String(), "loadgen:") {
		t.Errorf("missing human summary in output:\n%s", stdout.String())
	}
}

func TestLoadgenBadFlags(t *testing.T) {
	cases := [][]string{
		{"-rate", "0"},
		{"-duration", "-1s"},
		{"-mix", "catalog=4,bogus=1"},
		{"-mix", "catalog"},
		{"-mix", "catalog=-2"},
		{"-mix", "catalog=0,replay=0,batch=0"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(context.Background(), args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want usage error 2 (stderr: %s)", args, code, stderr.String())
		}
	}
}

func TestScheduleDeterministicWeightedRoundRobin(t *testing.T) {
	a := &kindState{name: "a", weight: 2}
	b := &kindState{name: "b", weight: 1}
	sched := schedule([]*kindState{a, b})
	var got []string
	for _, k := range sched {
		got = append(got, k.name)
	}
	want := []string{"a", "b", "a"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("schedule = %v, want %v", got, want)
	}
}

// TestHistogramPercentiles: the shared fixed-bucket histogram loadgen
// now records into stays within its documented quantile error (~±9% on
// the quarter-octave bounds) — the property the bench-regression gate's
// 25% threshold relies on.
func TestHistogramPercentiles(t *testing.T) {
	h := obs.NewHistogram(nil)
	for i := 1; i <= 1000; i++ {
		h.ObserveDuration(time.Duration(i) * time.Millisecond)
	}
	snap := h.Snapshot()
	for _, c := range []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.99, 990 * time.Millisecond}} {
		got := snap.QuantileDuration(c.q)
		if rel := float64(got-c.want) / float64(c.want); rel < -0.10 || rel > 0.10 {
			t.Errorf("q%.2f = %v, want %v ±10%%", c.q, got, c.want)
		}
	}
	var empty obs.HistogramSnapshot
	if got := empty.QuantileDuration(0.99); got != 0 {
		t.Errorf("p99 of empty = %v, want 0", got)
	}
}

// TestLoadgenScrape: -scrape parses /metrics around the run and reports
// moved counters; a target without /metrics fails the run.
func TestLoadgenScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an in-process server and generates load")
	}
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-rate", "100", "-duration", "200ms", "-scrape", "-mix", "catalog=1",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "/metrics delta") {
		t.Errorf("no scrape delta in output:\n%s", out)
	}
	if !strings.Contains(out, "vitdyn_http_requests_total") {
		t.Errorf("scrape delta missing the request counter:\n%s", out)
	}
	if strings.Contains(out, "_bucket") {
		t.Errorf("scrape delta leaks histogram bucket lines:\n%s", out)
	}

	// A target with no /metrics endpoint must fail the scrape.
	dead := httptest.NewServer(http.NotFoundHandler())
	defer dead.Close()
	stdout.Reset()
	stderr.Reset()
	code = run(context.Background(), []string{
		"-addr", strings.TrimPrefix(dead.URL, "http://"),
		"-rate", "10", "-duration", "50ms", "-scrape", "-warm=false", "-mix", "catalog=1",
		"-max-error-rate", "1",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("scrape against a /metrics-less target: run = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
}

func TestLoadgenCapturesAllocsProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("boots an in-process server and generates load")
	}
	// A stand-in debug listener: asserts the delta-profile query shape
	// and returns a recognizable payload.
	fake := []byte("fake-pprof-protobuf-payload")
	var gotPath, gotSeconds string
	debug := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotPath = r.URL.Path
		gotSeconds = r.URL.Query().Get("seconds")
		w.Write(fake)
	}))
	defer debug.Close()

	out := t.TempDir() + "/allocs.pprof"
	var stdout, stderr bytes.Buffer
	code := run(context.Background(), []string{
		"-rate", "50", "-duration", "300ms", "-mix", "catalog=1",
		"-profile", debug.URL, "-profile-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run = %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if gotPath != "/debug/pprof/allocs" || gotSeconds != "1" {
		t.Errorf("profile fetch hit %s?seconds=%s, want /debug/pprof/allocs?seconds=1", gotPath, gotSeconds)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, fake) {
		t.Errorf("profile file holds %q, want the endpoint's payload", data)
	}
	if !strings.Contains(stdout.String(), "wrote allocs profile") {
		t.Errorf("missing profile note in output:\n%s", stdout.String())
	}

	// An unreachable debug listener fails the run loudly.
	stderr.Reset()
	if code := run(context.Background(), []string{
		"-rate", "50", "-duration", "100ms", "-mix", "catalog=1",
		"-profile", "http://127.0.0.1:1", "-profile-out", out,
	}, &stdout, &stderr); code != 1 {
		t.Errorf("unreachable -profile run = %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "allocs profile") {
		t.Errorf("profile failure not diagnosed: %s", stderr.String())
	}
}
