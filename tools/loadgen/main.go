// Command loadgen is an open-loop, constant-arrival load generator for
// the vitdyn serving layer. It fires requests at a fixed rate — arrivals
// never wait for completions, so a slow server accumulates in-flight
// work instead of silently throttling the offered load (the
// coordinated-omission trap closed-loop harnesses fall into) — across a
// weighted mix of /v1/catalog, /v1/replay and /v1/batch traffic, and
// reports per-kind p50/p99/p999 latency.
//
// By default it boots an in-process serve.Server on a random port, warms
// the catalog cache with one request of each kind, then measures — so
// the numbers are steady-state serving latency (cache lookups plus HTTP
// overhead), not first-build sweep cost. Point -addr at a running
// vitdynd to load an external daemon instead.
//
// Usage:
//
//	loadgen [-addr host:port] [-rate N] [-duration D]
//	        [-mix catalog=4,replay=1,batch=1] [-family segformer]
//	        [-backend flops] [-timeout D] [-max-error-rate F]
//	        [-warm=false] [-bench] [-scrape]
//	        [-profile http://host:debugport] [-profile-out allocs.pprof]
//
// -profile points at a pprof debug listener (vitdynd -debug-addr) and
// captures a delta allocs profile spanning the measured run into
// -profile-out — `make load-profile` wires the whole flow up.
//
// -bench emits Go benchmark-format lines
// (BenchmarkLoadgen/<kind>/p50 ... ns/op) that tools/benchjson parses,
// so `make bench-json` folds serving latency into the BENCH_<sha>.json
// artifact and the CI regression gate guards it like any benchmark.
//
// -scrape fetches the target's /metrics before and after the run,
// verifies both scrapes parse as Prometheus text exposition (exit 1
// otherwise — this is the CI check that the exposition stays valid
// under load), and prints the counters that moved.
//
// Latencies are recorded into the same fixed-bucket histograms the
// server exports (quarter-octave bounds, ~±9% quantile error), so
// loadgen's percentiles and a Prometheus quantile over the server's
// /metrics histograms agree on methodology.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"vitdyn/internal/obs"
	"vitdyn/internal/serve"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}

// kindState is one traffic kind's request builder and latency histogram
// — the same mergeable fixed-bucket type the server exports on /metrics,
// so percentiles here and there share one methodology.
type kindState struct {
	name   string
	weight int
	do     func(ctx context.Context, client *http.Client) error
	hist   *obs.Histogram

	mu   sync.Mutex
	errs int
}

func (k *kindState) record(d time.Duration, err error) {
	if err != nil {
		k.mu.Lock()
		k.errs++
		k.mu.Unlock()
		return
	}
	k.hist.ObserveDuration(d)
}

// parseMix decodes "catalog=4,replay=1,batch=1" into per-kind weights.
// Unknown kinds are errors; omitted kinds get weight 0 (never sent).
func parseMix(s string, kinds map[string]*kindState) error {
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, w, ok := strings.Cut(part, "=")
		if !ok {
			return fmt.Errorf("bad mix element %q: want kind=weight", part)
		}
		k, known := kinds[name]
		if !known {
			return fmt.Errorf("bad mix kind %q (want catalog, replay, batch)", name)
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 0 {
			return fmt.Errorf("bad mix weight %q for %s: want integer >= 0", w, name)
		}
		k.weight = n
	}
	return nil
}

// schedule expands the weights into a deterministic round-robin order:
// request i is schedule[i % len]. No randomness, so runs are repeatable.
func schedule(kinds []*kindState) []*kindState {
	var sched []*kindState
	remaining := true
	for round := 0; remaining; round++ {
		remaining = false
		for _, k := range kinds {
			if round < k.weight {
				sched = append(sched, k)
				remaining = true
			}
		}
	}
	return sched
}

// scrapeMetrics fetches and strictly parses the target's /metrics; an
// unparseable exposition is a hard failure (the whole point of -scrape
// is gating on exposition validity). Returns the raw samples plus a
// key→value map for delta reporting.
func scrapeMetrics(ctx context.Context, client *http.Client, baseURL string) ([]obs.Sample, map[string]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	samples, err := obs.ParseExposition(resp.Body)
	if err != nil {
		return nil, nil, fmt.Errorf("invalid exposition: %w", err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Key()] = s.Value
	}
	return samples, out, nil
}

// checkWindowedSeries is the -scrape gate on the rolling-window
// exposition: after a load run the windowed per-route duration
// quantiles and the window rate series must exist and carry the traffic
// just offered (a load run finishes well inside the shortest window).
// It prints the windowed p99s next to the cumulative p99 reconstructed
// from the same scrape's histogram buckets, so a drift between the two
// methodologies is visible in every CI load log.
func checkWindowedSeries(stdout io.Writer, samples []obs.Sample) error {
	// route → window → windowed p99 (seconds).
	winP99 := make(map[string]map[string]float64)
	rateSeen := false
	for _, s := range samples {
		switch s.Name {
		case "vitdyn_http_request_duration_window_seconds":
			if s.Labels["quantile"] != "0.99" {
				continue
			}
			route := s.Labels["route"]
			if winP99[route] == nil {
				winP99[route] = make(map[string]float64)
			}
			winP99[route][s.Labels["window"]] = s.Value
		case "vitdyn_requests_window_rate":
			if s.Value > 0 {
				rateSeen = true
			}
		}
	}
	if len(winP99) == 0 {
		return fmt.Errorf("no vitdyn_http_request_duration_window_seconds series in /metrics")
	}
	if !rateSeen {
		return fmt.Errorf("vitdyn_requests_window_rate is zero for every window after a load run")
	}

	// Cumulative p99 per route, rebuilt from the _bucket series of the
	// same scrape.
	type pt struct {
		le  float64
		cum int64
	}
	buckets := make(map[string][]pt)
	for _, s := range samples {
		if s.Name != "vitdyn_http_request_duration_seconds_bucket" {
			continue
		}
		le := math.Inf(1)
		if l := s.Labels["le"]; l != "+Inf" {
			v, err := strconv.ParseFloat(l, 64)
			if err != nil {
				continue
			}
			le = v
		}
		route := s.Labels["route"]
		buckets[route] = append(buckets[route], pt{le, int64(s.Value)})
	}
	cumP99 := make(map[string]float64)
	for route, pts := range buckets {
		sort.Slice(pts, func(i, j int) bool { return pts[i].le < pts[j].le })
		snap := obs.HistogramSnapshot{Counts: make([]int64, len(pts))}
		prev := int64(0)
		for i, p := range pts {
			if !math.IsInf(p.le, 1) {
				snap.Bounds = append(snap.Bounds, p.le)
			}
			snap.Counts[i] = p.cum - prev
			snap.Count += p.cum - prev
			prev = p.cum
		}
		cumP99[route] = snap.Quantile(0.99)
	}

	routes := make([]string, 0, len(winP99))
	for r := range winP99 {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	nonEmpty := false
	fmt.Fprintf(stdout, "loadgen: p99 windowed vs cumulative per route:\n")
	for _, route := range routes {
		windows := make([]string, 0, len(winP99[route]))
		for w := range winP99[route] {
			windows = append(windows, w)
		}
		sort.Strings(windows)
		line := fmt.Sprintf("loadgen:   %-24s", route)
		for _, w := range windows {
			v := winP99[route][w]
			if v > 0 {
				nonEmpty = true
			}
			line += fmt.Sprintf("  %s %8.3fms", w, v*1e3)
		}
		line += fmt.Sprintf("  cumulative %8.3fms", cumP99[route]*1e3)
		fmt.Fprintln(stdout, line)
	}
	if !nonEmpty {
		return fmt.Errorf("every windowed p99 is zero after a load run — windowed histograms not recording")
	}
	return nil
}

// reportScrapeDelta prints every non-bucket series that moved between
// the two scrapes, sorted, so a load run doubles as a quick view of
// which server counters the traffic actually drove.
func reportScrapeDelta(stdout io.Writer, before, after map[string]float64) {
	var keys []string
	for k := range after {
		if strings.Contains(k, "_bucket{") || strings.HasSuffix(k, "_bucket") {
			continue // 82 bucket lines per route would drown the report
		}
		if after[k] != before[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	fmt.Fprintf(stdout, "loadgen: /metrics delta (%d series moved):\n", len(keys))
	for _, k := range keys {
		fmt.Fprintf(stdout, "loadgen:   %-64s %+g\n", k, after[k]-before[k])
	}
}

// checkedGet issues one GET and treats any non-200 as an error.
func checkedGet(ctx context.Context, client *http.Client, url string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return checkedDo(client, req)
}

// checkedPost issues one JSON POST and treats any non-200 as an error.
func checkedPost(ctx context.Context, client *http.Client, url string, body []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return checkedDo(client, req)
}

func checkedDo(client *http.Client, req *http.Request) error {
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Drain so the connection returns to the pool — latency numbers
	// would otherwise include per-request TCP+TLS setup, not serving.
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: status %d", req.Method, req.URL.Path, resp.StatusCode)
	}
	return nil
}

// captureAllocsProfile fetches a delta allocs profile from a pprof
// debug listener, spanning (roughly) the load run: the ?seconds= window
// makes the endpoint record allocations between two heap snapshots, so
// the profile shows what the offered traffic allocated, not what the
// process accumulated since boot. The HTTP client tolerates the server
// holding the request open for the whole window.
func captureAllocsProfile(ctx context.Context, baseURL, out string, span time.Duration) error {
	secs := int(span.Seconds())
	if secs < 1 {
		secs = 1
	}
	url := fmt.Sprintf("%s/debug/pprof/allocs?seconds=%d", strings.TrimSuffix(baseURL, "/"), secs)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: span + 30*time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(body))
	}
	if len(body) == 0 {
		return fmt.Errorf("GET %s: empty profile", url)
	}
	return os.WriteFile(out, body, 0o644)
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "target daemon host:port (empty = boot an in-process server on a random port)")
	rate := fs.Float64("rate", 100, "open-loop arrival rate in requests/second")
	duration := fs.Duration("duration", 5*time.Second, "measured load duration")
	mix := fs.String("mix", "catalog=4,replay=1,batch=1", "traffic mix as kind=weight pairs (kinds: catalog, replay, batch)")
	family := fs.String("family", "segformer", "catalog family every request prices")
	backendSpec := fs.String("backend", "flops", "cost backend spec (see /v1/backends)")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request timeout")
	warm := fs.Bool("warm", true, "issue one request per kind before measuring so latencies reflect steady-state serving, not the first catalog build")
	maxErrRate := fs.Float64("max-error-rate", 0.01, "fail (exit 1) when more than this fraction of measured requests errored")
	bench := fs.Bool("bench", false, "emit Go benchmark-format lines (BenchmarkLoadgen/<kind>/p50|p99|p999) for tools/benchjson")
	scrape := fs.Bool("scrape", false, "scrape the target's /metrics before and after the run, fail (exit 1) when either scrape is not valid Prometheus exposition, and print the counters that moved")
	profile := fs.String("profile", "", "pprof base URL of the target's debug listener (vitdynd -debug-addr), e.g. http://127.0.0.1:6060; captures a delta allocs profile spanning the measured run")
	profileOut := fs.String("profile-out", "allocs.pprof", "file the captured allocs profile is written to (with -profile)")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *rate <= 0 {
		fmt.Fprintf(stderr, "loadgen: bad -rate %v: want > 0 requests/second\n", *rate)
		return 2
	}
	if *duration <= 0 {
		fmt.Fprintf(stderr, "loadgen: bad -duration %v: want > 0\n", *duration)
		return 2
	}

	// Boot the in-process target when no external daemon was named.
	base := *addr
	if base == "" {
		srvCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		addrCh := make(chan net.Addr, 1)
		srvDone := make(chan error, 1)
		go func() {
			srvDone <- serve.ListenAndServe(srvCtx, "127.0.0.1:0", serve.Options{}, func(a net.Addr) { addrCh <- a })
		}()
		select {
		case a := <-addrCh:
			base = a.String()
		case err := <-srvDone:
			fmt.Fprintf(stderr, "loadgen: in-process server: %v\n", err)
			return 1
		}
		defer func() { cancel(); <-srvDone }()
	}
	baseURL := "http://" + base

	catalogURL := fmt.Sprintf("%s/v1/catalog?family=%s&backend=%s", baseURL, *family, *backendSpec)
	replayBody, err := json.Marshal(map[string]any{
		"catalog":  map[string]any{"family": *family, "backend": *backendSpec},
		"trace":    map[string]any{"kind": "sinusoid", "frames": 64},
		"policies": []string{"dynamic"},
	})
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}
	item := map[string]any{"family": *family, "backend": *backendSpec}
	batchBody, err := json.Marshal(map[string]any{"requests": []any{item, item}})
	if err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 1
	}

	kinds := []*kindState{
		{name: "catalog", hist: obs.NewHistogram(nil), do: func(ctx context.Context, c *http.Client) error {
			return checkedGet(ctx, c, catalogURL)
		}},
		{name: "replay", hist: obs.NewHistogram(nil), do: func(ctx context.Context, c *http.Client) error {
			return checkedPost(ctx, c, baseURL+"/v1/replay", replayBody)
		}},
		{name: "batch", hist: obs.NewHistogram(nil), do: func(ctx context.Context, c *http.Client) error {
			return checkedPost(ctx, c, baseURL+"/v1/batch", batchBody)
		}},
	}
	byName := make(map[string]*kindState, len(kinds))
	for _, k := range kinds {
		byName[k.name] = k
	}
	if err := parseMix(*mix, byName); err != nil {
		fmt.Fprintf(stderr, "loadgen: %v\n", err)
		return 2
	}
	sched := schedule(kinds)
	if len(sched) == 0 {
		fmt.Fprintf(stderr, "loadgen: empty mix %q: every weight is zero\n", *mix)
		return 2
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}

	fmt.Fprintf(stdout, "loadgen: %s\n", obs.Version())

	var preScrape map[string]float64
	if *scrape {
		sctx, cancel := context.WithTimeout(ctx, *timeout)
		_, preScrape, err = scrapeMetrics(sctx, client, baseURL)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: pre-run scrape: %v\n", err)
			return 1
		}
	}

	// Warm pass: one synchronous request per active kind. A failure here
	// is a misconfigured target (bad family/backend, daemon down), not
	// load — fail loudly instead of measuring a wall of errors.
	if *warm {
		for _, k := range kinds {
			if k.weight == 0 {
				continue
			}
			wctx, cancel := context.WithTimeout(ctx, *timeout)
			err := k.do(wctx, client)
			cancel()
			if err != nil {
				fmt.Fprintf(stderr, "loadgen: warmup %s request failed: %v\n", k.name, err)
				return 1
			}
		}
	}

	// A requested allocs profile spans the measured run: the pprof
	// endpoint blocks for its ?seconds= window collecting the delta, so
	// it runs concurrently with the load loop and is joined after it.
	var profErr error
	profDone := make(chan struct{})
	if *profile != "" {
		go func() {
			defer close(profDone)
			profErr = captureAllocsProfile(ctx, *profile, *profileOut, *duration)
		}()
	} else {
		close(profDone)
	}

	// The open loop: one arrival per tick, each served on its own
	// goroutine so a slow response never delays the next arrival.
	interval := time.Duration(float64(time.Second) / *rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	stop := time.After(*duration)
	var wg sync.WaitGroup
	sent := 0
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-stop:
			break loop
		case <-ticker.C:
			k := sched[sent%len(sched)]
			sent++
			wg.Add(1)
			go func(k *kindState) {
				defer wg.Done()
				rctx, cancel := context.WithTimeout(ctx, *timeout)
				defer cancel()
				t0 := time.Now()
				err := k.do(rctx, client)
				k.record(time.Since(t0), err)
			}(k)
		}
	}
	wg.Wait()
	<-profDone
	if profErr != nil {
		fmt.Fprintf(stderr, "loadgen: allocs profile: %v\n", profErr)
		return 1
	}
	if *profile != "" {
		fmt.Fprintf(stdout, "loadgen: wrote allocs profile to %s (inspect with `go tool pprof %s`)\n", *profileOut, *profileOut)
	}

	// Report: per-kind percentiles plus the all-traffic aggregate, read
	// from histogram snapshots ("all" is a bucket-wise merge — the same
	// aggregation a Prometheus sum-by-le over routes performs).
	all := obs.NewHistogram(nil).Snapshot()
	totalOK, totalErrs := 0, 0
	fmt.Fprintf(stdout, "loadgen: %d requests offered at %.0f/s over %s against %s\n", sent, *rate, *duration, base)
	report := func(name string, snap obs.HistogramSnapshot, errs int) {
		p50 := snap.QuantileDuration(0.50)
		p99 := snap.QuantileDuration(0.99)
		p999 := snap.QuantileDuration(0.999)
		fmt.Fprintf(stdout, "loadgen: %-8s %6d ok %4d err  p50 %8.3fms  p99 %8.3fms  p999 %8.3fms\n",
			name, snap.Count, errs,
			float64(p50)/1e6, float64(p99)/1e6, float64(p999)/1e6)
		if *bench && snap.Count > 0 {
			for _, pc := range []struct {
				label string
				v     time.Duration
			}{{"p50", p50}, {"p99", p99}, {"p999", p999}} {
				fmt.Fprintf(stdout, "BenchmarkLoadgen/%s/%s \t%8d\t%12d ns/op\n", name, pc.label, snap.Count, pc.v.Nanoseconds())
			}
		}
	}
	for _, k := range kinds {
		if k.weight == 0 {
			continue
		}
		k.mu.Lock()
		errs := k.errs
		k.mu.Unlock()
		snap := k.hist.Snapshot()
		if err := all.Merge(snap); err != nil {
			fmt.Fprintf(stderr, "loadgen: merging %s histogram: %v\n", k.name, err)
			return 1
		}
		totalOK += int(snap.Count)
		totalErrs += errs
		report(k.name, snap, errs)
	}
	report("all", all, totalErrs)

	if *scrape {
		sctx, cancel := context.WithTimeout(ctx, *timeout)
		postSamples, postScrape, err := scrapeMetrics(sctx, client, baseURL)
		cancel()
		if err != nil {
			fmt.Fprintf(stderr, "loadgen: post-run scrape: %v\n", err)
			return 1
		}
		reportScrapeDelta(stdout, preScrape, postScrape)
		if err := checkWindowedSeries(stdout, postSamples); err != nil {
			fmt.Fprintf(stderr, "loadgen: windowed metrics check: %v\n", err)
			return 1
		}
	}

	if done := totalOK + totalErrs; done > 0 {
		if errRate := float64(totalErrs) / float64(done); errRate > *maxErrRate {
			fmt.Fprintf(stderr, "loadgen: error rate %.2f%% exceeds -max-error-rate %.2f%% (%d of %d requests failed)\n",
				100*errRate, 100**maxErrRate, totalErrs, done)
			return 1
		}
	}
	return 0
}
