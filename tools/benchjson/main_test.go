package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: vitdyn/internal/rdd
BenchmarkCatalogSelect-8         	    1000	        90.94 ns/op	       0 B/op	       0 allocs/op
BenchmarkCatalogSelectFallback-8 	    1000	      1191 ns/op	    2304 B/op	       1 allocs/op
BenchmarkSimulate                	    1000	     65534 ns/op
PASS
ok  	vitdyn/internal/rdd	0.070s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	sel, ok := art.Benchmarks["BenchmarkCatalogSelect"]
	if !ok {
		t.Fatal("BenchmarkCatalogSelect missing (GOMAXPROCS suffix not stripped?)")
	}
	if sel.Iterations != 1000 || sel.NsPerOp != 90.94 {
		t.Errorf("parsed %+v", sel)
	}
	if sel.Extra["B"] != 0 || sel.Extra["allocs"] != 0 {
		t.Errorf("extra metrics %+v", sel.Extra)
	}
	if fb := art.Benchmarks["BenchmarkCatalogSelectFallback"]; fb.Extra["B"] != 2304 || fb.Extra["allocs"] != 1 {
		t.Errorf("fallback extra metrics %+v", fb.Extra)
	}
	// Rows without -N suffix parse too.
	if sim := art.Benchmarks["BenchmarkSimulate"]; sim.NsPerOp != 65534 {
		t.Errorf("BenchmarkSimulate %+v", sim)
	}
}

func TestPrintDelta(t *testing.T) {
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":    {NsPerOp: 100},
		"BenchmarkB":    {NsPerOp: 100},
		"BenchmarkC":    {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 5},
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 150}, // slower
		"BenchmarkB":   {NsPerOp: 50},  // faster
		"BenchmarkC":   {NsPerOp: 104}, // within threshold
		"BenchmarkNew": {NsPerOp: 7},
	}}
	var out bytes.Buffer
	PrintDelta(&out, prev, cur, 0.10)
	s := out.String()
	for _, want := range []string{
		"BenchmarkA", "SLOWER +50.0%",
		"BenchmarkB", "faster -50.0%",
		"BenchmarkC", "~unchanged",
		"BenchmarkNew", "new",
		"BenchmarkGone", "removed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("delta output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "BENCH_one.json")
	var stdout, stderr bytes.Buffer

	// First run: no baseline yet — must still succeed and write the artifact.
	if code := run([]string{"-in", in, "-out", out1, "-baseline", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "skipping delta") {
		t.Errorf("missing-baseline run did not note the skip: %s", stdout.String())
	}
	var art Artifact
	data, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &art); err != nil || len(art.Benchmarks) != 3 {
		t.Fatalf("artifact unreadable (%v) or wrong size %d", err, len(art.Benchmarks))
	}

	// Second run against the first artifact: prints a delta.
	stdout.Reset()
	out2 := filepath.Join(dir, "BENCH_two.json")
	if code := run([]string{"-in", in, "-out", out2, "-baseline", out1}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "benchmark delta vs baseline") ||
		!strings.Contains(stdout.String(), "~unchanged") {
		t.Errorf("identical-input delta missing or wrong:\n%s", stdout.String())
	}

	// Degenerate inputs fail loudly.
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644)
	if code := run([]string{"-in", empty, "-out", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("empty input exit %d, want 1", code)
	}
	if code := run([]string{"-in", in}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -out exit %d, want 2", code)
	}
}
