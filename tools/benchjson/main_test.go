package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: vitdyn/internal/rdd
BenchmarkCatalogSelect-8         	    1000	        90.94 ns/op	       0 B/op	       0 allocs/op
BenchmarkCatalogSelectFallback-8 	    1000	      1191 ns/op	    2304 B/op	       1 allocs/op
BenchmarkSimulate                	    1000	     65534 ns/op
PASS
ok  	vitdyn/internal/rdd	0.070s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	sel, ok := art.Benchmarks["BenchmarkCatalogSelect"]
	if !ok {
		t.Fatal("BenchmarkCatalogSelect missing (GOMAXPROCS suffix not stripped?)")
	}
	if sel.Iterations != 1000 || sel.NsPerOp != 90.94 {
		t.Errorf("parsed %+v", sel)
	}
	if sel.Extra["B"] != 0 || sel.Extra["allocs"] != 0 {
		t.Errorf("extra metrics %+v", sel.Extra)
	}
	if fb := art.Benchmarks["BenchmarkCatalogSelectFallback"]; fb.Extra["B"] != 2304 || fb.Extra["allocs"] != 1 {
		t.Errorf("fallback extra metrics %+v", fb.Extra)
	}
	// Rows without -N suffix parse too.
	if sim := art.Benchmarks["BenchmarkSimulate"]; sim.NsPerOp != 65534 {
		t.Errorf("BenchmarkSimulate %+v", sim)
	}
}

func TestParseZeroIterationLines(t *testing.T) {
	// A zero-iteration row has no meaningful ns/op; it must not reach
	// the artifact (where it would later poison deltas and the gate).
	input := `BenchmarkDead-8      	       0	       0 ns/op
BenchmarkAlive-8     	     100	     250 ns/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := art.Benchmarks["BenchmarkDead"]; ok {
		t.Error("zero-iteration benchmark made it into the artifact")
	}
	if r, ok := art.Benchmarks["BenchmarkAlive"]; !ok || r.NsPerOp != 250 {
		t.Errorf("surviving benchmark parsed as %+v", art.Benchmarks)
	}
}

func TestParseMinOfN(t *testing.T) {
	// A -count=N run repeats each benchmark; the fastest sample must win
	// (with its own iteration count and extra metrics), so one slow
	// sample on a shared runner cannot flake the regression gate.
	input := `BenchmarkHot-8	     100	     3000000 ns/op	    4096 B/op	       8 allocs/op
BenchmarkHot-8	     100	     2000000 ns/op	    2048 B/op	       4 allocs/op
BenchmarkHot-8	      50	     2500000 ns/op	    3072 B/op	       6 allocs/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := art.Benchmarks["BenchmarkHot"]
	if !ok || len(art.Benchmarks) != 1 {
		t.Fatalf("parsed %+v, want exactly BenchmarkHot", art.Benchmarks)
	}
	if hot.NsPerOp != 2000000 || hot.Iterations != 100 {
		t.Errorf("kept sample %+v, want the fastest (2000000 ns/op, 100 iters)", hot)
	}
	if hot.Extra["B"] != 2048 || hot.Extra["allocs"] != 4 {
		t.Errorf("extra metrics %+v, want the fastest sample's", hot.Extra)
	}
}

func TestGateViolations(t *testing.T) {
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": {NsPerOp: 100},
		"BenchmarkOK":        {NsPerOp: 100},
		"BenchmarkImproved":  {NsPerOp: 100},
		"BenchmarkZeroBase":  {NsPerOp: 0}, // degenerate: never gates
		"BenchmarkRemoved":   {NsPerOp: 100},
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": {NsPerOp: 160}, // +60% > 25%
		"BenchmarkOK":        {NsPerOp: 110}, // +10% within gate
		"BenchmarkImproved":  {NsPerOp: 40},
		"BenchmarkZeroBase":  {NsPerOp: 50},
		"BenchmarkAdded":     {NsPerOp: 9999}, // new: nothing to compare
	}}
	viol := GateViolations(prev, cur, 0.25, 0)
	if len(viol) != 1 || !strings.Contains(viol[0], "BenchmarkRegressed") || !strings.Contains(viol[0], "+60.0%") {
		t.Errorf("violations %v, want exactly the +60%% regression", viol)
	}
	if viol := GateViolations(prev, cur, 0.60, 0); len(viol) != 0 {
		t.Errorf("60%% gate tripped: %v", viol)
	}
	// The noise floor excludes fast baselines: the same +60% regression
	// on a 100 ns benchmark is measurement noise at one iteration, not
	// a gate-worthy signal.
	if viol := GateViolations(prev, cur, 0.25, 1e6); len(viol) != 0 {
		t.Errorf("sub-floor benchmark tripped the gate: %v", viol)
	}
}

func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	// Millisecond-scale timings: above the default -gate-floor-ns, so
	// the end-to-end run exercises the gate proper.
	fast := `BenchmarkHot-8	     100	     2000000 ns/op
`
	slow := `BenchmarkHot-8	     100	     4000000 ns/op
`
	fastIn := filepath.Join(dir, "fast.txt")
	slowIn := filepath.Join(dir, "slow.txt")
	os.WriteFile(fastIn, []byte(fast), 0o644)
	os.WriteFile(slowIn, []byte(slow), 0o644)
	baseline := filepath.Join(dir, "BENCH_base.json")
	var stdout, stderr bytes.Buffer

	// Missing baseline: gate is warn-only, exit 0.
	if code := run([]string{"-in", fastIn, "-out", baseline, "-baseline", filepath.Join(dir, "none.json"), "-gate", "25"}, &stdout, &stderr); code != 0 {
		t.Fatalf("missing-baseline gate run exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "warn-only") {
		t.Errorf("missing-baseline gate run did not note warn-only mode: %s", stdout.String())
	}

	// Within the gate: identical input, exit 0 and a gate-ok note.
	stdout.Reset()
	if code := run([]string{"-in", fastIn, "-out", filepath.Join(dir, "same.json"), "-baseline", baseline, "-gate", "25"}, &stdout, &stderr); code != 0 {
		t.Fatalf("within-gate run exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate ok") {
		t.Errorf("within-gate run missing gate-ok note: %s", stdout.String())
	}

	// A 2x regression against the baseline trips the gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-in", slowIn, "-out", filepath.Join(dir, "slow.json"), "-baseline", baseline, "-gate", "25"}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "GATE: BenchmarkHot") || !strings.Contains(stderr.String(), "gate failed") {
		t.Errorf("gate failure not diagnosed on stderr: %s", stderr.String())
	}

	// Same regression without -gate: report-only, exit 0.
	if code := run([]string{"-in", slowIn, "-out", filepath.Join(dir, "slow2.json"), "-baseline", baseline}, &stdout, &stderr); code != 0 {
		t.Errorf("ungated regressed run exit %d, want 0", code)
	}
}

func TestPrintDelta(t *testing.T) {
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":    {NsPerOp: 100},
		"BenchmarkB":    {NsPerOp: 100},
		"BenchmarkC":    {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 5},
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 150}, // slower
		"BenchmarkB":   {NsPerOp: 50},  // faster
		"BenchmarkC":   {NsPerOp: 104}, // within threshold
		"BenchmarkNew": {NsPerOp: 7},
	}}
	var out bytes.Buffer
	PrintDelta(&out, prev, cur, 0.10)
	s := out.String()
	for _, want := range []string{
		"BenchmarkA", "SLOWER +50.0%",
		"BenchmarkB", "faster -50.0%",
		"BenchmarkC", "~unchanged",
		"BenchmarkNew", "new",
		"BenchmarkGone", "removed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("delta output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "BENCH_one.json")
	var stdout, stderr bytes.Buffer

	// First run: no baseline yet — must still succeed and write the artifact.
	if code := run([]string{"-in", in, "-out", out1, "-baseline", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "skipping delta") {
		t.Errorf("missing-baseline run did not note the skip: %s", stdout.String())
	}
	var art Artifact
	data, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &art); err != nil || len(art.Benchmarks) != 3 {
		t.Fatalf("artifact unreadable (%v) or wrong size %d", err, len(art.Benchmarks))
	}

	// Second run against the first artifact: prints a delta.
	stdout.Reset()
	out2 := filepath.Join(dir, "BENCH_two.json")
	if code := run([]string{"-in", in, "-out", out2, "-baseline", out1}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "benchmark delta vs baseline") ||
		!strings.Contains(stdout.String(), "~unchanged") {
		t.Errorf("identical-input delta missing or wrong:\n%s", stdout.String())
	}

	// Degenerate inputs fail loudly.
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644)
	if code := run([]string{"-in", empty, "-out", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("empty input exit %d, want 1", code)
	}
	if code := run([]string{"-in", in}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -out exit %d, want 2", code)
	}
}
