package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: vitdyn/internal/rdd
BenchmarkCatalogSelect-8         	    1000	        90.94 ns/op	       0 B/op	       0 allocs/op
BenchmarkCatalogSelectFallback-8 	    1000	      1191 ns/op	    2304 B/op	       1 allocs/op
BenchmarkSimulate                	    1000	     65534 ns/op
PASS
ok  	vitdyn/internal/rdd	0.070s
`

func TestParse(t *testing.T) {
	art, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(art.Benchmarks))
	}
	sel, ok := art.Benchmarks["BenchmarkCatalogSelect"]
	if !ok {
		t.Fatal("BenchmarkCatalogSelect missing (GOMAXPROCS suffix not stripped?)")
	}
	if sel.Iterations != 1000 || sel.NsPerOp != 90.94 {
		t.Errorf("parsed %+v", sel)
	}
	if sel.Extra["B"] != 0 || sel.Extra["allocs"] != 0 {
		t.Errorf("extra metrics %+v", sel.Extra)
	}
	if fb := art.Benchmarks["BenchmarkCatalogSelectFallback"]; fb.Extra["B"] != 2304 || fb.Extra["allocs"] != 1 {
		t.Errorf("fallback extra metrics %+v", fb.Extra)
	}
	// Rows without -N suffix parse too.
	if sim := art.Benchmarks["BenchmarkSimulate"]; sim.NsPerOp != 65534 {
		t.Errorf("BenchmarkSimulate %+v", sim)
	}
}

func TestParseZeroIterationLines(t *testing.T) {
	// A zero-iteration row has no meaningful ns/op; it must not reach
	// the artifact (where it would later poison deltas and the gate).
	input := `BenchmarkDead-8      	       0	       0 ns/op
BenchmarkAlive-8     	     100	     250 ns/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := art.Benchmarks["BenchmarkDead"]; ok {
		t.Error("zero-iteration benchmark made it into the artifact")
	}
	if r, ok := art.Benchmarks["BenchmarkAlive"]; !ok || r.NsPerOp != 250 {
		t.Errorf("surviving benchmark parsed as %+v", art.Benchmarks)
	}
}

func TestParseMinOfN(t *testing.T) {
	// A -count=N run repeats each benchmark; the fastest sample must win
	// (with its own iteration count and extra metrics), so one slow
	// sample on a shared runner cannot flake the regression gate.
	input := `BenchmarkHot-8	     100	     3000000 ns/op	    4096 B/op	       8 allocs/op
BenchmarkHot-8	     100	     2000000 ns/op	    2048 B/op	       4 allocs/op
BenchmarkHot-8	      50	     2500000 ns/op	    3072 B/op	       6 allocs/op
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	hot, ok := art.Benchmarks["BenchmarkHot"]
	if !ok || len(art.Benchmarks) != 1 {
		t.Fatalf("parsed %+v, want exactly BenchmarkHot", art.Benchmarks)
	}
	if hot.NsPerOp != 2000000 || hot.Iterations != 100 {
		t.Errorf("kept sample %+v, want the fastest (2000000 ns/op, 100 iters)", hot)
	}
	if hot.Extra["B"] != 2048 || hot.Extra["allocs"] != 4 {
		t.Errorf("extra metrics %+v, want the fastest sample's", hot.Extra)
	}
}

func TestGateViolations(t *testing.T) {
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": {NsPerOp: 100},
		"BenchmarkOK":        {NsPerOp: 100},
		"BenchmarkImproved":  {NsPerOp: 100},
		"BenchmarkZeroBase":  {NsPerOp: 0}, // degenerate: never gates
		"BenchmarkRemoved":   {NsPerOp: 100},
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": {NsPerOp: 160}, // +60% > 25%
		"BenchmarkOK":        {NsPerOp: 110}, // +10% within gate
		"BenchmarkImproved":  {NsPerOp: 40},
		"BenchmarkZeroBase":  {NsPerOp: 50},
		"BenchmarkAdded":     {NsPerOp: 9999}, // new: nothing to compare
	}}
	viol := GateViolations(prev, cur, 0.25, 0)
	if len(viol) != 1 || !strings.Contains(viol[0], "BenchmarkRegressed") || !strings.Contains(viol[0], "+60.0%") {
		t.Errorf("violations %v, want exactly the +60%% regression", viol)
	}
	if viol := GateViolations(prev, cur, 0.60, 0); len(viol) != 0 {
		t.Errorf("60%% gate tripped: %v", viol)
	}
	// The noise floor excludes fast baselines: the same +60% regression
	// on a 100 ns benchmark is measurement noise at one iteration, not
	// a gate-worthy signal.
	if viol := GateViolations(prev, cur, 0.25, 1e6); len(viol) != 0 {
		t.Errorf("sub-floor benchmark tripped the gate: %v", viol)
	}
}

func TestRunGate(t *testing.T) {
	dir := t.TempDir()
	// Millisecond-scale timings: above the default -gate-floor-ns, so
	// the end-to-end run exercises the gate proper.
	fast := `BenchmarkHot-8	     100	     2000000 ns/op
`
	slow := `BenchmarkHot-8	     100	     4000000 ns/op
`
	fastIn := filepath.Join(dir, "fast.txt")
	slowIn := filepath.Join(dir, "slow.txt")
	os.WriteFile(fastIn, []byte(fast), 0o644)
	os.WriteFile(slowIn, []byte(slow), 0o644)
	baseline := filepath.Join(dir, "BENCH_base.json")
	var stdout, stderr bytes.Buffer

	// Missing baseline: gate is warn-only, exit 0.
	if code := run([]string{"-in", fastIn, "-out", baseline, "-baseline", filepath.Join(dir, "none.json"), "-gate", "25"}, &stdout, &stderr); code != 0 {
		t.Fatalf("missing-baseline gate run exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "warn-only") {
		t.Errorf("missing-baseline gate run did not note warn-only mode: %s", stdout.String())
	}

	// Within the gate: identical input, exit 0 and a gate-ok note.
	stdout.Reset()
	if code := run([]string{"-in", fastIn, "-out", filepath.Join(dir, "same.json"), "-baseline", baseline, "-gate", "25"}, &stdout, &stderr); code != 0 {
		t.Fatalf("within-gate run exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate ok") {
		t.Errorf("within-gate run missing gate-ok note: %s", stdout.String())
	}

	// A 2x regression against the baseline trips the gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-in", slowIn, "-out", filepath.Join(dir, "slow.json"), "-baseline", baseline, "-gate", "25"}, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed run exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "GATE: BenchmarkHot") || !strings.Contains(stderr.String(), "gate failed") {
		t.Errorf("gate failure not diagnosed on stderr: %s", stderr.String())
	}

	// Same regression without -gate: report-only, exit 0.
	if code := run([]string{"-in", slowIn, "-out", filepath.Join(dir, "slow2.json"), "-baseline", baseline}, &stdout, &stderr); code != 0 {
		t.Errorf("ungated regressed run exit %d, want 0", code)
	}
}

func TestPrintDelta(t *testing.T) {
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":    {NsPerOp: 100},
		"BenchmarkB":    {NsPerOp: 100},
		"BenchmarkC":    {NsPerOp: 100},
		"BenchmarkGone": {NsPerOp: 5},
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkA":   {NsPerOp: 150}, // slower
		"BenchmarkB":   {NsPerOp: 50},  // faster
		"BenchmarkC":   {NsPerOp: 104}, // within threshold
		"BenchmarkNew": {NsPerOp: 7},
	}}
	var out bytes.Buffer
	PrintDelta(&out, prev, cur, 0.10)
	s := out.String()
	for _, want := range []string{
		"BenchmarkA", "SLOWER +50.0%",
		"BenchmarkB", "faster -50.0%",
		"BenchmarkC", "~unchanged",
		"BenchmarkNew", "new",
		"BenchmarkGone", "removed",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("delta output missing %q:\n%s", want, s)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(sampleBench), 0o644); err != nil {
		t.Fatal(err)
	}
	out1 := filepath.Join(dir, "BENCH_one.json")
	var stdout, stderr bytes.Buffer

	// First run: no baseline yet — must still succeed and write the artifact.
	if code := run([]string{"-in", in, "-out", out1, "-baseline", filepath.Join(dir, "missing.json")}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "skipping delta") {
		t.Errorf("missing-baseline run did not note the skip: %s", stdout.String())
	}
	var art Artifact
	data, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &art); err != nil || len(art.Benchmarks) != 3 {
		t.Fatalf("artifact unreadable (%v) or wrong size %d", err, len(art.Benchmarks))
	}

	// Second run against the first artifact: prints a delta.
	stdout.Reset()
	out2 := filepath.Join(dir, "BENCH_two.json")
	if code := run([]string{"-in", in, "-out", out2, "-baseline", out1}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "benchmark delta vs baseline") ||
		!strings.Contains(stdout.String(), "~unchanged") {
		t.Errorf("identical-input delta missing or wrong:\n%s", stdout.String())
	}

	// Degenerate inputs fail loudly.
	empty := filepath.Join(dir, "empty.txt")
	os.WriteFile(empty, []byte("no benchmarks here\n"), 0o644)
	if code := run([]string{"-in", empty, "-out", filepath.Join(dir, "x.json")}, &stdout, &stderr); code != 1 {
		t.Errorf("empty input exit %d, want 1", code)
	}
	if code := run([]string{"-in", in}, &stdout, &stderr); code != 2 {
		t.Errorf("missing -out exit %d, want 2", code)
	}
}

func TestGateAllocViolations(t *testing.T) {
	allocs := func(ns, a float64) Result {
		return Result{NsPerOp: ns, Extra: map[string]float64{"B": 8 * a, "allocs": a}}
	}
	prev := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": allocs(100, 10),
		"BenchmarkOK":        allocs(100, 10),
		"BenchmarkImproved":  allocs(100, 10),
		"BenchmarkWasZero":   allocs(100, 0),
		"BenchmarkStaysZero": allocs(100, 0),
		"BenchmarkNoColumn":  {NsPerOp: 100}, // baseline predates -benchmem
	}}
	cur := Artifact{Benchmarks: map[string]Result{
		"BenchmarkRegressed": allocs(100, 20), // +100% > 25%
		"BenchmarkOK":        allocs(100, 11), // +10% within gate
		"BenchmarkImproved":  allocs(100, 2),
		"BenchmarkWasZero":   allocs(100, 1), // any alloc on a zero-alloc path gates
		"BenchmarkStaysZero": allocs(100, 0),
		"BenchmarkNoColumn":  allocs(100, 50),
		"BenchmarkAdded":     allocs(100, 999), // new: nothing to compare
	}}
	viol := GateAllocViolations(prev, cur, 0.25)
	if len(viol) != 2 {
		t.Fatalf("violations %v, want the +100%% regression and the zero-alloc break", viol)
	}
	if !strings.Contains(viol[0], "BenchmarkRegressed") || !strings.Contains(viol[0], "+100.0%") {
		t.Errorf("regression violation %q", viol[0])
	}
	if !strings.Contains(viol[1], "BenchmarkWasZero") || !strings.Contains(viol[1], "allocation-free") {
		t.Errorf("zero-alloc violation %q", viol[1])
	}
	// The zero-alloc break gates no matter how loose the threshold is.
	if viol := GateAllocViolations(prev, cur, 100); len(viol) != 1 || !strings.Contains(viol[0], "BenchmarkWasZero") {
		t.Errorf("loose-threshold violations %v, want only the zero-alloc break", viol)
	}
}

func TestParseMixedLines(t *testing.T) {
	// Real bench output mixes plain ns/op rows, -benchmem rows, loadgen's
	// synthetic rows and custom ReportMetric units; every row must parse
	// with exactly the extras it carries.
	input := `goos: linux
BenchmarkPlain-8         	    1000	       250 ns/op
BenchmarkMem-8           	     500	      1200 ns/op	     384 B/op	       7 allocs/op
BenchmarkZeroAlloc-8     	   10000	       158.4 ns/op	       0 B/op	       0 allocs/op
BenchmarkLoadgen/catalog/p50 	     400	      247000 ns/op
BenchmarkCustom-8        	     100	      9000 ns/op	        42.5 widgets/op	       3 allocs/op
PASS
`
	art, err := Parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5: %+v", len(art.Benchmarks), art.Benchmarks)
	}
	if r := art.Benchmarks["BenchmarkPlain"]; r.Extra != nil {
		t.Errorf("plain row grew extras: %+v", r.Extra)
	}
	if r := art.Benchmarks["BenchmarkMem"]; r.Extra["B"] != 384 || r.Extra["allocs"] != 7 {
		t.Errorf("benchmem row extras %+v", r.Extra)
	}
	if r := art.Benchmarks["BenchmarkZeroAlloc"]; r.NsPerOp != 158.4 || r.Extra["allocs"] != 0 {
		t.Errorf("zero-alloc row %+v", r)
	}
	if r := art.Benchmarks["BenchmarkLoadgen/catalog/p50"]; r.NsPerOp != 247000 {
		t.Errorf("loadgen row %+v", r)
	}
	if r := art.Benchmarks["BenchmarkCustom"]; r.Extra["widgets"] != 42.5 || r.Extra["allocs"] != 3 {
		t.Errorf("custom-metric row extras %+v", r.Extra)
	}
}

func TestRunGateAllocs(t *testing.T) {
	dir := t.TempDir()
	clean := `BenchmarkWarm-8	  100000	      158 ns/op	       0 B/op	       0 allocs/op
`
	dirty := `BenchmarkWarm-8	  100000	      160 ns/op	      48 B/op	       2 allocs/op
`
	cleanIn := filepath.Join(dir, "clean.txt")
	dirtyIn := filepath.Join(dir, "dirty.txt")
	os.WriteFile(cleanIn, []byte(clean), 0o644)
	os.WriteFile(dirtyIn, []byte(dirty), 0o644)
	baseline := filepath.Join(dir, "BENCH_base.json")
	var stdout, stderr bytes.Buffer

	if code := run([]string{"-in", cleanIn, "-out", baseline}, &stdout, &stderr); code != 0 {
		t.Fatalf("baseline run exit %d, stderr %s", code, stderr.String())
	}
	// Timing is within the ns/op gate (its floor excludes it anyway), but
	// the zero-alloc break must fail the allocs gate.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-in", dirtyIn, "-out", filepath.Join(dir, "d.json"), "-baseline", baseline, "-gate", "25", "-gate-allocs", "25"}, &stdout, &stderr); code != 1 {
		t.Fatalf("alloc-regressed run exit %d, want 1 (stderr %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "allocation-free") {
		t.Errorf("alloc gate failure not diagnosed: %s", stderr.String())
	}
	// Identical allocs pass both gates.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-in", cleanIn, "-out", filepath.Join(dir, "c.json"), "-baseline", baseline, "-gate", "25", "-gate-allocs", "25"}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean rerun exit %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate ok") {
		t.Errorf("clean rerun missing gate-ok note: %s", stdout.String())
	}
}
