// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact and, when a baseline artifact is supplied, prints a
// per-benchmark delta table — the piece CI uses to persist a
// BENCH_<sha>.json per run and report benchmark drift against the
// previous run.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | tee bench.txt
//	benchjson -in bench.txt -out BENCH_abc123.json [-baseline BENCH_prev.json]
//
// A missing or unreadable baseline is not an error (the first run of a
// repository has nothing to compare against); the tool notes it and
// still writes the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result row, e.g.
//
//	BenchmarkSweepParallel-8   	       5	 223456789 ns/op	  1234 B/op	  56 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// extraMetric matches trailing per-op metrics, e.g. "1234 B/op".
var extraMetric = regexp.MustCompile(`([0-9.]+) (\S+)/op`)

// Result is one benchmark's parsed metrics.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"` // unit → value, e.g. "B": 1234
}

// Artifact is the JSON file layout: benchmark name → metrics.
type Artifact struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "JSON artifact to write (required)")
	baseline := fs.String("baseline", "", "previous artifact to diff against (missing file = no delta, not an error)")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op change below which a delta is reported as ~unchanged")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchjson: -out is required")
		return 2
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	art, err := Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)

	if *baseline == "" {
		return 0
	}
	prevData, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stdout, "benchjson: no baseline (%v) — skipping delta\n", err)
		return 0
	}
	var prev Artifact
	if err := json.Unmarshal(prevData, &prev); err != nil {
		fmt.Fprintf(stdout, "benchjson: unreadable baseline (%v) — skipping delta\n", err)
		return 0
	}
	PrintDelta(stdout, prev, art, *threshold)
	return 0
}

// Parse extracts benchmark rows from `go test -bench` output.
func Parse(r io.Reader) (Artifact, error) {
	art := Artifact{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(m[4], -1) {
			if v, err := strconv.ParseFloat(em[1], 64); err == nil {
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[em[2]] = v
			}
		}
		art.Benchmarks[m[1]] = res
	}
	return art, sc.Err()
}

// PrintDelta reports, benchmark by benchmark, how cur moved relative to
// prev: relative ns/op change beyond threshold, plus added/removed
// benchmarks. Output order is sorted for stable CI logs.
func PrintDelta(w io.Writer, prev, cur Artifact, threshold float64) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "benchmark delta vs baseline (threshold ±%.0f%%):\n", 100*threshold)
	for _, name := range names {
		c := cur.Benchmarks[name]
		p, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "  %-50s new (%.0f ns/op)\n", name, c.NsPerOp)
			continue
		}
		if p.NsPerOp <= 0 {
			continue
		}
		rel := (c.NsPerOp - p.NsPerOp) / p.NsPerOp
		switch {
		case rel > threshold:
			fmt.Fprintf(w, "  %-50s SLOWER %+.1f%% (%.0f → %.0f ns/op)\n", name, 100*rel, p.NsPerOp, c.NsPerOp)
		case rel < -threshold:
			fmt.Fprintf(w, "  %-50s faster %+.1f%% (%.0f → %.0f ns/op)\n", name, 100*rel, p.NsPerOp, c.NsPerOp)
		default:
			fmt.Fprintf(w, "  %-50s ~unchanged (%+.1f%%)\n", name, 100*rel)
		}
	}
	removed := make([]string, 0)
	for name := range prev.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "  %-50s removed\n", name)
	}
}
