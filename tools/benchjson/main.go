// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact and, when a baseline artifact is supplied, prints a
// per-benchmark delta table — the piece CI uses to persist a
// BENCH_<sha>.json per run and report benchmark drift against the
// previous run.
//
// Usage:
//
//	go test -bench=. -benchtime=1x ./... | tee bench.txt
//	benchjson -in bench.txt -out BENCH_abc123.json [-baseline BENCH_prev.json]
//
// A missing or unreadable baseline is not an error (the first run of a
// repository has nothing to compare against); the tool notes it and
// still writes the artifact.
//
// -gate <pct> turns the delta into a CI gate: when a baseline is
// present and any benchmark's ns/op regressed more than pct percent,
// the tool exits non-zero after printing the offenders. Without a
// baseline the gate is warn-only, so first runs and cold caches never
// fail the build. Gated runs should pass `-count=N` (N ≥ 3) to go
// test: repeated rows collapse to their fastest sample at parse time,
// so one noisy sample on a shared runner cannot flake the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// benchLine matches one benchmark result row, e.g.
//
//	BenchmarkSweepParallel-8   	       5	 223456789 ns/op	  1234 B/op	  56 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// extraMetric matches trailing per-op metrics, e.g. "1234 B/op".
var extraMetric = regexp.MustCompile(`([0-9.]+) (\S+)/op`)

// Result is one benchmark's parsed metrics.
type Result struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Extra      map[string]float64 `json:"extra,omitempty"` // unit → value, e.g. "B": 1234
}

// Artifact is the JSON file layout: benchmark name → metrics.
type Artifact struct {
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "bench output file (default: stdin)")
	out := fs.String("out", "", "JSON artifact to write (required)")
	baseline := fs.String("baseline", "", "previous artifact to diff against (missing file = no delta, not an error)")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op change below which a delta is reported as ~unchanged")
	gate := fs.Float64("gate", 0, "fail (exit 1) when any benchmark regresses more than this percent vs the baseline (0 = report only; missing baseline = warn only)")
	gateAllocs := fs.Float64("gate-allocs", 0, "fail (exit 1) when any benchmark's allocs/op regresses more than this percent vs the baseline, or grows from zero (0 = report only; needs -benchmem runs so the allocs/op column exists)")
	gateFloor := fs.Float64("gate-floor-ns", 1e5, "exclude benchmarks whose baseline ns/op is below this from the gate (default 100µs: single-iteration timings below it — nanosecond micro-benchmarks especially — are noise at -benchtime=1x, while the replay/sweep hot paths all sit above it)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *out == "" {
		fmt.Fprintln(stderr, "benchjson: -out is required")
		return 2
	}

	var src io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(stderr, "benchjson: %v\n", err)
			return 1
		}
		defer f.Close()
		src = f
	}
	art, err := Parse(src)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if len(art.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found in input")
		return 1
	}

	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: wrote %d benchmarks to %s\n", len(art.Benchmarks), *out)

	gateSkipped := func(why string) {
		if *gate > 0 || *gateAllocs > 0 {
			fmt.Fprintf(stdout, "benchjson: %s — gate is warn-only this run\n", why)
		}
	}
	if *baseline == "" {
		gateSkipped("no baseline supplied")
		return 0
	}
	prevData, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(stdout, "benchjson: no baseline (%v) — skipping delta\n", err)
		gateSkipped("missing baseline")
		return 0
	}
	var prev Artifact
	if err := json.Unmarshal(prevData, &prev); err != nil {
		fmt.Fprintf(stdout, "benchjson: unreadable baseline (%v) — skipping delta\n", err)
		gateSkipped("unreadable baseline")
		return 0
	}
	PrintDelta(stdout, prev, art, *threshold)
	if *gate > 0 || *gateAllocs > 0 {
		var viol []string
		if *gate > 0 {
			viol = append(viol, GateViolations(prev, art, *gate/100, *gateFloor)...)
		}
		if *gateAllocs > 0 {
			viol = append(viol, GateAllocViolations(prev, art, *gateAllocs/100)...)
		}
		if len(viol) > 0 {
			for _, v := range viol {
				fmt.Fprintf(stderr, "benchjson: GATE: %s\n", v)
			}
			fmt.Fprintf(stderr, "benchjson: bench-regression gate failed: %d benchmark(s) regressed\n", len(viol))
			return 1
		}
		fmt.Fprintln(stdout, "benchjson: gate ok (no benchmark regressed beyond its threshold)")
	}
	return 0
}

// GateAllocViolations lists the benchmarks whose allocs/op regressed
// beyond the relative threshold (0.25 = 25%), plus any that grew from
// zero — a zero-alloc hot path is an invariant, not a measurement, so
// ANY allocation on one gates regardless of the threshold. Benchmarks
// missing the allocs column on either side never gate: the baseline may
// predate -benchmem. No noise floor applies — allocation counts are
// deterministic, unlike timings.
func GateAllocViolations(prev, cur Artifact, threshold float64) []string {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var viol []string
	for _, name := range names {
		p, ok := prev.Benchmarks[name]
		if !ok {
			continue
		}
		pa, pok := p.Extra["allocs"]
		ca, cok := cur.Benchmarks[name].Extra["allocs"]
		if !pok || !cok {
			continue
		}
		switch {
		case pa == 0 && ca > 0:
			viol = append(viol, fmt.Sprintf("%s was allocation-free, now %.0f allocs/op", name, ca))
		case pa > 0 && (ca-pa)/pa > threshold:
			viol = append(viol, fmt.Sprintf("%s allocs regressed %+.1f%% (%.0f → %.0f allocs/op)", name, 100*(ca-pa)/pa, pa, ca))
		}
	}
	return viol
}

// GateViolations lists the benchmarks present in both artifacts whose
// ns/op regressed beyond the relative threshold (0.25 = 25%), sorted by
// name. Added and removed benchmarks never gate (there is nothing to
// compare), and neither do degenerate zero-ns baselines or baselines
// below floorNs — single-iteration timings of nanosecond-scale
// micro-benchmarks swing far beyond any sane threshold on shared CI
// runners, so only benchmarks slow enough to measure reliably gate
// (at the default floor that includes the ~150µs replay-simulation hot
// path and every sweep benchmark; sub-floor micro-benchmarks like
// catalog Select need -benchtime well above 1x to gate meaningfully).
func GateViolations(prev, cur Artifact, threshold, floorNs float64) []string {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var viol []string
	for _, name := range names {
		p, ok := prev.Benchmarks[name]
		if !ok || p.NsPerOp <= 0 || p.NsPerOp < floorNs {
			continue
		}
		c := cur.Benchmarks[name]
		if rel := (c.NsPerOp - p.NsPerOp) / p.NsPerOp; rel > threshold {
			viol = append(viol, fmt.Sprintf("%s regressed %+.1f%% (%.0f → %.0f ns/op)", name, 100*rel, p.NsPerOp, c.NsPerOp))
		}
	}
	return viol
}

// Parse extracts benchmark rows from `go test -bench` output.
// Zero-iteration rows are dropped: their ns/op is meaningless and would
// poison both the delta table and the regression gate. When a benchmark
// name repeats (a `-count=N` run), the fastest sample wins: min-of-N is
// the standard noise reducer for single-shot timings on shared runners,
// and it keeps the gate from flaking on one slow sample.
func Parse(r io.Reader) (Artifact, error) {
	art := Artifact{Benchmarks: map[string]Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil || iters == 0 {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		if prev, ok := art.Benchmarks[m[1]]; ok && prev.NsPerOp <= ns {
			continue
		}
		res := Result{Iterations: iters, NsPerOp: ns}
		for _, em := range extraMetric.FindAllStringSubmatch(m[4], -1) {
			if v, err := strconv.ParseFloat(em[1], 64); err == nil {
				if res.Extra == nil {
					res.Extra = map[string]float64{}
				}
				res.Extra[em[2]] = v
			}
		}
		art.Benchmarks[m[1]] = res
	}
	return art, sc.Err()
}

// PrintDelta reports, benchmark by benchmark, how cur moved relative to
// prev: relative ns/op change beyond threshold, plus added/removed
// benchmarks. Output order is sorted for stable CI logs.
func PrintDelta(w io.Writer, prev, cur Artifact, threshold float64) {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "benchmark delta vs baseline (threshold ±%.0f%%):\n", 100*threshold)
	for _, name := range names {
		c := cur.Benchmarks[name]
		p, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "  %-50s new (%.0f ns/op)\n", name, c.NsPerOp)
			continue
		}
		if p.NsPerOp <= 0 {
			continue
		}
		rel := (c.NsPerOp - p.NsPerOp) / p.NsPerOp
		switch {
		case rel > threshold:
			fmt.Fprintf(w, "  %-50s SLOWER %+.1f%% (%.0f → %.0f ns/op)\n", name, 100*rel, p.NsPerOp, c.NsPerOp)
		case rel < -threshold:
			fmt.Fprintf(w, "  %-50s faster %+.1f%% (%.0f → %.0f ns/op)\n", name, 100*rel, p.NsPerOp, c.NsPerOp)
		default:
			fmt.Fprintf(w, "  %-50s ~unchanged (%+.1f%%)\n", name, 100*rel)
		}
	}
	removed := make([]string, 0)
	for name := range prev.Benchmarks {
		if _, ok := cur.Benchmarks[name]; !ok {
			removed = append(removed, name)
		}
	}
	sort.Strings(removed)
	for _, name := range removed {
		fmt.Fprintf(w, "  %-50s removed\n", name)
	}
}
